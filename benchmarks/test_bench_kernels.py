"""Benchmark — the batch-kernel execution path vs tuple-at-a-time interpretation.

Measures the real wall-clock advantage of the kernelised execution path
(``GumboOptions.kernel_mode``) on workload A3: the same pre-planned program
is executed with ``kernel_mode="off"`` (the interpreted map/combine/shuffle/
reduce loop) and with ``kernel_mode="on"`` (compiled matchers + set-based
semi-join kernels + metrics-from-counts accounting), on the serial backend.
Planning is excluded from the timings (one shared plan per mode), so the
ratio isolates the execution engine.  Before any timing is trusted, the two
paths are verified to produce identical output relations **and** identical
simulated metrics.

The acceptance bar is a ≥ 6× wall-clock speedup at 4 000 guard tuples; in
practice the columnar kernel path lands around 10×.

Results are written to ``BENCH_kernels.json`` (override the path with
``REPRO_BENCH_KERNELS_JSON``) so CI can archive the perf trajectory and gate
regressions against the committed floor
(``benchmarks/baselines/kernels.json``).
"""

from __future__ import annotations

import os
from time import perf_counter

from common import write_bench_artifact
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.workloads.queries import database_for, workload_query

#: Guard-relation cardinality of the benchmark workload (the acceptance
#: setup requires >= 4000).
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_KERNEL_TUPLES", 4_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get("REPRO_BENCH_KERNELS_JSON", "BENCH_kernels.json")

#: Timed repetitions (medians reported).
REPEATS = 3

#: Strategy under test; GREEDY exercises the MSJ + EVAL pipeline (the 1-ROUND
#: fused job is additionally covered by the CLI comparison and parity tests).
STRATEGY = "greedy"


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_bench_kernel_vs_interpreted(capsys):
    query = workload_query("A3")
    database = database_for(query, guard_tuples=DEFAULT_TUPLES, seed=7)

    results = {}
    timings = {}
    for mode in ("off", "on"):
        gumbo = Gumbo(options=GumboOptions(kernel_mode=mode))
        program = gumbo.plan(query, database, STRATEGY)
        times = []
        for _ in range(REPEATS):
            start = perf_counter()
            result = gumbo.execute_program(query, database, program, STRATEGY)
            times.append(perf_counter() - start)
        results[mode] = result
        timings[mode] = _median(times)

    # Correctness first: identical outputs and identical simulated metrics.
    interpreted, kernel = results["off"], results["on"]
    assert set(interpreted.all_outputs) == set(kernel.all_outputs)
    for name in interpreted.all_outputs:
        assert (
            interpreted.all_outputs[name].tuples() == kernel.all_outputs[name].tuples()
        ), name
    assert interpreted.summary() == kernel.summary()
    for job_id, expected in interpreted.metrics.job_metrics.items():
        got = kernel.metrics.job_metrics[job_id]
        assert expected.partitions == got.partitions, job_id
        assert expected.reduce_task_durations == got.reduce_task_durations, job_id

    speedup = (
        timings["off"] / timings["on"] if timings["on"] > 0 else float("inf")
    )
    write_bench_artifact(
        ARTIFACT_PATH,
        "kernels",
        {
            "interpreted_s": timings["off"],
            "kernel_s": timings["on"],
            "kernel_speedup": speedup,
        },
        workload="A3",
        strategy=STRATEGY,
        guard_tuples=DEFAULT_TUPLES,
        output_tuples=sum(len(rel) for rel in kernel.all_outputs.values()),
    )

    with capsys.disabled():
        print()
        print(
            f"kernel benchmark (A3, {DEFAULT_TUPLES} guard tuples, "
            f"strategy {STRATEGY}, serial backend)"
        )
        print(f"  interpreted (median): {timings['off'] * 1e3:9.3f} ms")
        print(f"  kernel (median):      {timings['on'] * 1e3:9.3f} ms")
        print(f"  speedup:              {speedup:9.2f}x")
        print(f"  artifact:             {ARTIFACT_PATH}")

    # The acceptance bar: the kernel path beats interpretation >= 6x on A3
    # (raised from 3x when the columnar storage path landed).
    assert speedup >= 6.0, (
        f"kernel path too slow: {timings['on'] * 1e3:.3f} ms vs interpreted "
        f"{timings['off'] * 1e3:.3f} ms ({speedup:.2f}x)"
    )
