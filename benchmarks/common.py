"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's evaluation
(see DESIGN.md for the experiment index).  The workload scale can be adjusted
through the ``REPRO_BENCH_SCALE`` environment variable; the default of
``5e-6`` (500-tuple guard relations standing in for the paper's 100M-tuple
relations) keeps the full suite in the minutes range while the scaled cost
environment preserves the paper-scale simulated times.
"""

from __future__ import annotations

import json
import os
import platform

from repro.workloads.scaling import ScaledEnvironment

#: Default workload scale of the benchmark suite.
DEFAULT_BENCH_SCALE = 5e-6

#: Smaller scale used by the sweep-style benchmarks (Figures 7 and 8), which
#: run an order of magnitude more strategy executions.
SWEEP_BENCH_SCALE = 2e-6


def bench_scale(default: float = DEFAULT_BENCH_SCALE) -> float:
    """The workload scale, overridable via ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_environment(
    default_scale: float = DEFAULT_BENCH_SCALE, nodes: int = 10
) -> ScaledEnvironment:
    """The scaled environment used by a benchmark."""
    return ScaledEnvironment(scale=bench_scale(default_scale), nodes=nodes)


#: Version of the unified ``BENCH_*.json`` artifact schema.  Bump when the
#: envelope (not the per-benchmark metrics) changes shape.
BENCH_SCHEMA_VERSION = 1


def write_bench_artifact(path: str, bench: str, metrics: dict, **extra) -> dict:
    """Write a ``BENCH_*.json`` artifact in the unified schema.

    Every benchmark artifact shares the same envelope so downstream tooling
    (``compare_baselines.py``, CI archiving, ad-hoc notebooks) can parse any
    of them uniformly::

        {
          "schema_version": 1,
          "bench": "kernels",
          "python": "3.11.9",
          "platform": "Linux-...",
          "metrics": {...},          # the gated / reported numbers
          ...extra                   # benchmark-specific context (workload,
        }                            # tuple counts, strategy, ...)

    ``metrics`` holds every number a baseline gate may reference;
    ``compare_baselines.py`` looks metrics up inside the nested ``metrics``
    dict (falling back to top-level keys for pre-schema artifacts).  Returns
    the payload that was written.
    """
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": bench,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "metrics": dict(metrics),
    }
    overlap = set(extra) & set(payload)
    if overlap:
        raise ValueError(f"extra keys collide with the envelope: {sorted(overlap)}")
    payload.update(extra)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload
