"""Shared configuration for the benchmark harness.

Every benchmark reproduces one table or figure of the paper's evaluation
(see DESIGN.md for the experiment index).  The workload scale can be adjusted
through the ``REPRO_BENCH_SCALE`` environment variable; the default of
``5e-6`` (500-tuple guard relations standing in for the paper's 100M-tuple
relations) keeps the full suite in the minutes range while the scaled cost
environment preserves the paper-scale simulated times.
"""

from __future__ import annotations

import os

from repro.workloads.scaling import ScaledEnvironment

#: Default workload scale of the benchmark suite.
DEFAULT_BENCH_SCALE = 5e-6

#: Smaller scale used by the sweep-style benchmarks (Figures 7 and 8), which
#: run an order of magnitude more strategy executions.
SWEEP_BENCH_SCALE = 2e-6


def bench_scale(default: float = DEFAULT_BENCH_SCALE) -> float:
    """The workload scale, overridable via ``REPRO_BENCH_SCALE``."""
    return float(os.environ.get("REPRO_BENCH_SCALE", default))


def bench_environment(
    default_scale: float = DEFAULT_BENCH_SCALE, nodes: int = 10
) -> ScaledEnvironment:
    """The scaled environment used by a benchmark."""
    return ScaledEnvironment(scale=bench_scale(default_scale), nodes=nodes)
