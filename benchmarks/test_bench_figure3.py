"""Benchmark E1 — Figure 3: queries A1-A5 under all strategies.

Regenerates both panels of Figure 3 (absolute metrics and metrics relative to
SEQ) and checks the qualitative claims of Section 5.2: parallel plans lower
the net time, PAR pays in total time, GREEDY recovers the total time on the
sharing-heavy queries, and the Hive/Pig baselines lose to Gumbo.
"""

from repro.experiments import averages_by_strategy, run_figure3

from common import bench_environment


def test_bench_figure3(benchmark, capsys):
    result = benchmark.pedantic(
        run_figure3, kwargs={"environment": bench_environment()}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    averages = averages_by_strategy(result.records, "seq")
    # Parallel Gumbo strategies reduce the net time versus SEQ on average...
    assert averages["PAR"]["net_time_pct"] < 100.0
    assert averages["GREEDY"]["net_time_pct"] < 100.0
    # ...but naive parallelism costs extra total time, which GREEDY reduces.
    assert averages["PAR"]["total_time_pct"] > 100.0
    assert averages["GREEDY"]["total_time_pct"] < averages["PAR"]["total_time_pct"]

    for query_id in ("A1", "A2", "A3", "A5"):
        par = result.record(query_id, "par")
        greedy = result.record(query_id, "greedy")
        assert greedy.total_time <= par.total_time, query_id

    # Hive and Pig lose to Gumbo's parallel strategies on total time.
    for query_id in ("A1", "A2", "A3"):
        for baseline in ("hpar", "hpars", "ppar"):
            assert (
                result.record(query_id, baseline).total_time
                > result.record(query_id, "par").total_time
            ), (query_id, baseline)

    # HPAR's sequential join stages hurt its net time versus HPARS (A1, A2).
    for query_id in ("A1", "A2"):
        assert (
            result.record(query_id, "hpar").net_time
            > result.record(query_id, "hpars").net_time
        )

    # 1-ROUND is reported for A3 and dominates every other strategy there.
    one_round = result.record("A3", "1-round")
    for strategy in ("seq", "par", "greedy", "hpar", "hpars", "ppar"):
        assert one_round.net_time <= result.record("A3", strategy).net_time
        assert one_round.total_time <= result.record("A3", strategy).total_time
