"""Benchmark — differential-fuzzer throughput (generated programs per second).

The fuzzer is only useful if a meaningful campaign fits in a CI budget, so
this benchmark tracks how many random (program, database) cases per second
the full differential check sustains: generation, the reference evaluation,
and every applicable strategy on the serial backend (the parallel backend is
excluded here because pool startup would measure the host, not the fuzzer).
The measured rate is recorded in the benchmark's ``extra_info`` so the perf
trajectory keeps fuzzer overhead visible next to the paper benchmarks.
"""

from __future__ import annotations

import os

from repro.fuzz import FuzzOptions, run_fuzz

#: Campaign length; small enough for CI, big enough to amortise setup.
FUZZ_BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_FUZZ_ITERATIONS", 15))


def test_bench_fuzz_throughput(benchmark, capsys):
    options = FuzzOptions(
        seed=7,
        iterations=FUZZ_BENCH_ITERATIONS,
        backends=("serial",),
        stop_on_failure=False,
    )
    report = benchmark.pedantic(run_fuzz, args=(options,), rounds=1, iterations=1)

    with capsys.disabled():
        print()
        print(report.format())

    assert report.ok, report.counterexamples[0].describe()
    assert report.cases_run == FUZZ_BENCH_ITERATIONS
    benchmark.extra_info["programs_per_second"] = round(report.programs_per_second, 2)
    benchmark.extra_info["combinations_checked"] = report.combinations_checked
