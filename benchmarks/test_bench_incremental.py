"""Benchmark — incremental delta refresh vs full re-execution.

Measures what the incremental subsystem buys on a Section 5 workload (A3):
a materialized result is refreshed after a small insert batch (≤ 1% of the
guard relation, half new guard tuples, half conditional-key flips) and the
refresh is raced against what an invalidating service would do — a full
re-execution (statistics collection + AUTO strategy selection + plan
construction + run) over the mutated database.  The refreshed output is
verified tuple-for-tuple against the recomputed one before any timing is
trusted.

The acceptance bar is a ≥ 4× advantage for the incremental refresh; in
practice the restricted delta program touches a few dozen tuples instead of
the whole database and lands around 6-10× faster (the margin narrowed when
columnar storage made the kernelized full recompute itself ~3× faster).

Results are written to ``BENCH_incremental.json`` (override the path with
``REPRO_BENCH_INCREMENTAL_JSON``) so CI can archive the perf trajectory and
gate regressions against the committed baseline
(``benchmarks/baselines/incremental.json``).
"""

from __future__ import annotations

import os
import random
from time import perf_counter

from common import write_bench_artifact
from repro.core.gumbo import Gumbo
from repro.incremental import apply_inserts, dedupe_inserts
from repro.workloads.queries import database_for, workload_query

#: Guard-relation cardinality of the benchmark workload.
DEFAULT_TUPLES = int(os.environ.get("REPRO_BENCH_INCREMENTAL_TUPLES", 4_000))

#: Where the JSON artifact is written.
ARTIFACT_PATH = os.environ.get("REPRO_BENCH_INCREMENTAL_JSON", "BENCH_incremental.json")

#: Timed repetitions (medians reported).
REPEATS = 3

#: Strategy for both paths (AUTO = what the serving layer runs by default).
STRATEGY = "auto"


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def _insert_batch(database, guard_tuples: int):
    """≤ 1% of the guard: half fresh guard rows, half conditional-key flips."""
    rng = random.Random(2016)
    count = max(2, guard_tuples // 100)
    guard = database["R"]
    stored = guard.sorted_tuples()
    ceiling = 1 + max(v for row in stored for v in row)
    batch = {
        "R": [
            tuple(ceiling + rng.randrange(10 * count) for _ in range(guard.arity))
            for _ in range(count - count // 2)
        ],
        # A3's condition is S(x) ∧ T(x) ∧ U(x) ∧ V(x): keys drawn from stored
        # guard rows flip the S-atom's truth for existing tuples.
        "S": [(rng.choice(stored)[0],) for _ in range(count // 2)],
    }
    assert sum(len(rows) for rows in batch.values()) <= max(2, guard_tuples // 100)
    return batch


def test_bench_incremental_refresh_vs_recompute(capsys):
    query = workload_query("A3")
    database = database_for(query, guard_tuples=DEFAULT_TUPLES, seed=7)
    batch = _insert_batch(database, DEFAULT_TUPLES)
    inserted = sum(len(rows) for rows in batch.values())

    gumbo = Gumbo()

    # -- full re-execution: stats + AUTO planning + run on the mutated data.
    mutated = database.copy()
    apply_inserts(mutated, dedupe_inserts(mutated, batch))
    full_times = []
    for _ in range(REPEATS):
        start = perf_counter()
        full = gumbo.execute(query, mutated, STRATEGY)
        full_times.append(perf_counter() - start)
    full_s = _median(full_times)
    expected = {
        name: frozenset(rel.tuples()) for name, rel in full.all_outputs.items()
    }

    # -- incremental: materialize once per repeat, time only the refresh.
    refresh_times = []
    last_delta = None
    for _ in range(REPEATS):
        materialization = gumbo.materialize(query, database.copy(), STRATEGY)
        start = perf_counter()
        last_delta = gumbo.execute_delta(materialization, batch)
        refresh_times.append(perf_counter() - start)
        # Correctness first: the refreshed output equals the recompute.
        assert materialization.answers() == expected
    refresh_s = _median(refresh_times)

    speedup = full_s / refresh_s if refresh_s > 0 else float("inf")
    write_bench_artifact(
        ARTIFACT_PATH,
        "incremental",
        {
            "full_recompute_s": full_s,
            "incremental_refresh_s": refresh_s,
            "incremental_speedup": speedup,
        },
        workload="A3",
        guard_tuples=DEFAULT_TUPLES,
        inserted_tuples=inserted,
        insert_fraction=inserted / DEFAULT_TUPLES,
        affected_guard_tuples=last_delta.affected_guard_tuples,
        added_tuples=last_delta.added_count(),
        removed_tuples=last_delta.removed_count(),
        engine_runs=last_delta.engine_runs,
    )

    with capsys.disabled():
        print()
        print(
            f"incremental benchmark (A3, {DEFAULT_TUPLES} guard tuples, "
            f"{inserted} inserts = "
            f"{100 * inserted / DEFAULT_TUPLES:.1f}% of the guard)"
        )
        print(f"  full re-execution (median):   {full_s * 1e3:9.3f} ms")
        print(f"  incremental refresh (median): {refresh_s * 1e3:9.3f} ms")
        print(f"  speedup:                      {speedup:9.1f}x")
        print(f"  affected guard tuples:        {last_delta.affected_guard_tuples}")
        print(f"  artifact:                     {ARTIFACT_PATH}")

    # The acceptance bar: a small-batch refresh beats full re-execution >= 4x
    # (re-based from 5x when columnar storage made the kernelized full
    # recompute — the ratio's denominator — ~3x faster; absolute refresh
    # time was unaffected).
    assert speedup >= 4.0, (
        f"incremental refresh too slow: {refresh_s * 1e3:.3f} ms vs full "
        f"recompute {full_s * 1e3:.3f} ms ({speedup:.1f}x)"
    )
    # The batch really was small and really did something.
    assert inserted <= DEFAULT_TUPLES // 100
    assert last_delta.added_count() + last_delta.removed_count() > 0
