"""Benchmarks E5-E7 — Figure 7: data-size, cluster-size and combined scaling.

Regenerates the three panels of Figure 7 for the A3-style query and checks the
paper's observations: 1-ROUND is best everywhere; PAR's net time deteriorates
at large data volumes; extra nodes help the parallel strategies; scaling data
and nodes together keeps net times roughly flat while total time grows.
"""

from repro.experiments import run_figure7a, run_figure7b, run_figure7c

from common import SWEEP_BENCH_SCALE, bench_environment


def test_bench_figure7a_data_size(benchmark, capsys):
    environment = bench_environment(SWEEP_BENCH_SCALE)
    result = benchmark.pedantic(
        run_figure7a, kwargs={"environment": environment}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    labels = ["200M", "400M", "800M", "1600M"]
    for label in labels:
        # Observation 1: 1-ROUND is best in both net and total time.
        one_round = result.record(label, "1-round")
        for strategy in ("seq", "par", "greedy"):
            record = result.record(label, strategy)
            assert one_round.net_time <= record.net_time + 1e-9
            assert one_round.total_time <= record.total_time + 1e-9
    # Total time grows with the data for every strategy.
    for strategy in ("seq", "par", "greedy", "1-round"):
        totals = [result.record(label, strategy).total_time for label in labels]
        assert totals == sorted(totals)
    # At the largest size the grouped strategies still beat SEQ's net time...
    largest = labels[-1]
    for strategy in ("greedy", "1-round"):
        assert (
            result.record(largest, strategy).net_time
            < result.record(largest, "seq").net_time
        )
    # ...while PAR deteriorates: its lack of grouping needs so many map tasks
    # that it loses ground against GREEDY as the data grows (observation 2 of
    # Section 5.4 — in the paper PAR's net time blows up at the right end of
    # Figure 7a).
    smallest = labels[0]
    par_vs_greedy_small = (
        result.record(smallest, "par").net_time
        / result.record(smallest, "greedy").net_time
    )
    par_vs_greedy_large = (
        result.record(largest, "par").net_time
        / result.record(largest, "greedy").net_time
    )
    assert par_vs_greedy_large >= par_vs_greedy_small


def test_bench_figure7b_cluster_size(benchmark, capsys):
    environment = bench_environment(SWEEP_BENCH_SCALE)
    result = benchmark.pedantic(
        run_figure7b, kwargs={"environment": environment}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    # Observation 3: adding nodes improves the parallel strategies' net time.
    for strategy in ("par", "greedy", "1-round"):
        five = result.record("5nodes", strategy).net_time
        twenty = result.record("20nodes", strategy).net_time
        assert twenty <= five + 1e-9
    # SEQ benefits much less from extra nodes than PAR does.
    seq_gain = (
        result.record("5nodes", "seq").net_time
        - result.record("20nodes", "seq").net_time
    )
    par_gain = (
        result.record("5nodes", "par").net_time
        - result.record("20nodes", "par").net_time
    )
    assert par_gain >= seq_gain - 1e-9


def test_bench_figure7c_combined_scaling(benchmark, capsys):
    environment = bench_environment(SWEEP_BENCH_SCALE)
    result = benchmark.pedantic(
        run_figure7c, kwargs={"environment": environment}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.format())

    # Observation 4: with data and nodes scaled together, net times stay
    # roughly flat (within a factor 2) while total time keeps growing.
    labels = ["200M/5", "400M/10", "800M/20"]
    for strategy in ("par", "greedy", "1-round"):
        nets = [result.record(label, strategy).net_time for label in labels]
        totals = [result.record(label, strategy).total_time for label in labels]
        assert max(nets) <= 2.0 * min(nets)
        assert totals == sorted(totals)
