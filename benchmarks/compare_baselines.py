"""Compare emitted benchmark JSON artifacts against committed baselines.

The ``bench-regression`` CI job runs the benchmark suites (which emit
``BENCH_service.json`` / ``BENCH_incremental.json``) and then this script,
which fails the build when any gated metric regresses more than the
tolerance below its committed floor in ``benchmarks/baselines/*.json``.

Every gated metric is **higher-is-better**; a baseline file has the shape::

    {"artifact": "BENCH_service.json", "metrics": {"plan_cache_speedup": 30.0}}

Artifacts may use the unified envelope written by
``benchmarks/common.py:write_bench_artifact`` (gated numbers nested under a
``"metrics"`` key) or the legacy flat layout; both are accepted.

Usage::

    python benchmarks/compare_baselines.py \
        --baseline-dir benchmarks/baselines --tolerance 0.30

Exit code 0 when every metric clears ``baseline * (1 - tolerance)``, 1
otherwise (and 2 for missing/garbled files — a broken gate must not pass
silently).  Baselines are deliberately conservative floors, not last-run
snapshots: update them in the same PR as the change that moved them (see
README, "Benchmark baselines").  Commits whose message contains
``[bench-skip]`` skip the CI job entirely (the escape hatch for known-noisy
infrastructure changes).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List


def compare(baseline_dir: str, artifact_dir: str, tolerance: float) -> int:
    baselines = sorted(
        name for name in os.listdir(baseline_dir) if name.endswith(".json")
    )
    if not baselines:
        print(f"error: no baseline files in {baseline_dir}", file=sys.stderr)
        return 2
    failures: List[str] = []
    rows: List[str] = []
    for name in baselines:
        path = os.path.join(baseline_dir, name)
        try:
            with open(path) as handle:
                baseline = json.load(handle)
            artifact_path = os.path.join(artifact_dir, baseline["artifact"])
            metrics = baseline["metrics"]
        except (OSError, KeyError, ValueError) as exc:
            print(f"error: unreadable baseline {path}: {exc}", file=sys.stderr)
            return 2
        try:
            with open(artifact_path) as handle:
                current = json.load(handle)
        except (OSError, ValueError) as exc:
            print(
                f"error: missing/garbled artifact {artifact_path} "
                f"(did the benchmark run?): {exc}",
                file=sys.stderr,
            )
            return 2
        for metric, floor in sorted(metrics.items()):
            # Unified schema nests the gated numbers under "metrics"
            # (see benchmarks/common.py:write_bench_artifact); pre-schema
            # artifacts kept them at the top level.  Accept both.
            value = current.get("metrics", {}).get(metric)
            if value is None:
                value = current.get(metric)
            if value is None:
                failures.append(f"{baseline['artifact']}: metric {metric!r} missing")
                continue
            gate = floor * (1.0 - tolerance)
            status = "ok" if value >= gate else "REGRESSION"
            rows.append(
                f"  {baseline['artifact']:<24} {metric:<24} "
                f"{value:>12.3f}  floor {floor:>10.3f}  gate {gate:>10.3f}  "
                f"{status}"
            )
            if value < gate:
                failures.append(
                    f"{baseline['artifact']}: {metric} = {value:.3f} is more "
                    f"than {tolerance:.0%} below the committed floor "
                    f"{floor:.3f} (gate {gate:.3f})"
                )
    print(f"benchmark regression gate (tolerance {tolerance:.0%}):")
    for row in rows:
        print(row)
    if failures:
        print()
        print("FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        print()
        print(
            "If this movement is expected, update benchmarks/baselines/ in "
            "this PR (see README, 'Benchmark baselines'); for known-noisy "
            "infrastructure commits use the [bench-skip] commit-message "
            "escape hatch."
        )
        return 1
    print("all gated metrics clear their floors")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory of committed baseline JSON files",
    )
    parser.add_argument(
        "--artifact-dir",
        default=".",
        help="directory the benchmarks wrote their BENCH_*.json into",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fraction below the committed floor (default 0.30)",
    )
    args = parser.parse_args(argv)
    return compare(args.baseline_dir, args.artifact_dir, args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
