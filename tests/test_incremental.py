"""Incremental delta evaluation: unit rules, property tests, oracle campaign.

Four layers are covered:

* statement-level delta rules: inserts into guards, conditionals and both;
  negation and disjunction (where inserts *remove* output tuples); support
  counting across collapsing projections; multi-statement programs where
  intermediate deltas (insertions and deletions) propagate into downstream
  guards and conditionals;
* the engine seam: engine mode (restricted MR programs on a backend) and
  direct mode (maintained indexes) agree with each other and with a full
  recompute, on both backends;
* a hypothesis property: for random programs and random insert batches the
  refreshed materialization equals the reference evaluation of the rebuilt
  database;
* the incremental oracle: a ≥200-case seeded campaign over every applicable
  strategy × both backends (plus direct mode) shows zero divergence, and a
  deliberately corrupted delta rule is detected.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Database, Gumbo
from repro.fuzz import (
    DifferentialOracle,
    FuzzOptions,
    generate_case,
    generate_insert_batch,
    run_fuzz,
)
from repro.incremental import (
    IncrementalError,
    apply_inserts,
    dedupe_inserts,
)
from repro.query.reference import evaluate_sgf


def _recompute_answers(gumbo, query, database, inserts):
    """Reference answers over a fresh copy of *database* plus *inserts*."""
    mutated = database.copy()
    apply_inserts(mutated, dedupe_inserts(mutated, inserts))
    return {
        name: frozenset(rel.tuples())
        for name, rel in evaluate_sgf(gumbo.as_sgf(query), mutated).items()
    }


def _check(query, data, inserts, strategy=None, mode="engine", backend="serial"):
    """Materialize, refresh, and compare against a full recompute."""
    database = Database.from_dict(data) if isinstance(data, dict) else data
    with Gumbo(backend=backend) as gumbo:
        materialization = gumbo.materialize(query, database.copy(), strategy)
        expected = _recompute_answers(gumbo, query, database, inserts)
        delta = gumbo.execute_delta(materialization, inserts, mode=mode)
        assert materialization.answers() == expected
        return materialization, delta


class TestStatementDeltaRules:
    def test_insert_into_conditional_adds_output(self):
        query = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);"
        mat, delta = _check(
            query,
            {"R": [(1, 2), (3, 4)], "S": [(1,)]},
            {"S": [(3,)]},
        )
        assert delta.added == {"Z": frozenset({(3, 4)})}
        assert not delta.removed
        assert delta.affected_guard_tuples == 1  # only the flipped guard row

    def test_insert_into_guard_adds_output(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x);"
        mat, delta = _check(
            query,
            {"R": [(1, 2)], "S": [(1,), (7,)]},
            {"R": [(7, 7), (9, 9)]},
        )
        assert delta.added == {"Z": frozenset({(7,)})}
        assert not delta.removed

    def test_negation_insert_removes_output(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE NOT T(y);"
        mat, delta = _check(
            query,
            {"R": [(1, 2), (3, 4)], "T": [(4,)]},
            {"T": [(2,)]},
        )
        assert delta.removed == {"Z": frozenset({(1,)})}
        assert not delta.added
        assert (1,) not in mat.output("Z")

    def test_projection_support_counting_keeps_shared_output(self):
        # Both guard rows project to (1,); flipping one must not remove it.
        query = "Z := SELECT (x) FROM R(x, y) WHERE NOT T(y);"
        mat, delta = _check(
            query,
            {"R": [(1, 2), (1, 3)]},
            {"T": [(2,)]},
        )
        assert not delta.added and not delta.removed
        assert (1,) in mat.output("Z")
        # Flip the second supporter too: now the output tuple must go.
        with Gumbo() as gumbo:
            db = Database.from_dict({"R": [(1, 2), (1, 3)], "T": [(2,)]})
            mat2 = gumbo.materialize(query, db, None)
            d2 = gumbo.execute_delta(mat2, {"T": [(3,)]})
            assert d2.removed == {"Z": frozenset({(1,)})}

    def test_disjunction_no_false_removal(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x) OR NOT T(y);"
        _check(
            query,
            {"R": [(1, 2), (3, 4)], "S": [(1,)]},
            {"T": [(2,), (4,)]},
        )

    def test_intermediate_delta_propagates_to_downstream_guard(self):
        query = (
            "Z1 := SELECT (x) FROM R(x, y) WHERE S(x);\n"
            "Z2 := SELECT (x) FROM Z1(x) WHERE T(x);"
        )
        mat, delta = _check(
            query,
            {"R": [(1, 2), (3, 4)], "S": [(1,)], "T": [(3,)]},
            {"S": [(3,)]},
        )
        assert delta.added["Z1"] == frozenset({(3,)})
        assert delta.added["Z2"] == frozenset({(3,)})

    def test_intermediate_removal_propagates_downstream(self):
        # Inserting into T removes from Z1 (negation), which must remove the
        # corresponding Z2 tuples downstream.
        query = (
            "Z1 := SELECT (x) FROM R(x, y) WHERE NOT T(y);\n"
            "Z2 := SELECT (x) FROM G(x) WHERE Z1(x);"
        )
        mat, delta = _check(
            query,
            {"R": [(1, 2)], "G": [(1,)]},
            {"T": [(2,)]},
        )
        assert delta.removed == {
            "Z1": frozenset({(1,)}),
            "Z2": frozenset({(1,)}),
        }

    def test_downstream_negated_intermediate(self):
        # Z1 gains a tuple -> NOT Z1(x) flips false for a G row.
        query = (
            "Z1 := SELECT (x) FROM R(x, y) WHERE S(x);\n"
            "Z2 := SELECT (x) FROM G(x) WHERE NOT Z1(x);"
        )
        mat, delta = _check(
            query,
            {"R": [(3, 4)], "G": [(3,)]},
            {"S": [(3,)]},
        )
        assert delta.added["Z1"] == frozenset({(3,)})
        assert delta.removed["Z2"] == frozenset({(3,)})

    def test_duplicate_and_existing_rows_are_no_ops(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x);"
        mat, delta = _check(
            query,
            {"R": [(1, 2)], "S": [(1,)]},
            {"R": [(1, 2), (1, 2)], "S": [(1,)]},
        )
        assert delta.inserted_tuples == 0
        assert not delta.added and not delta.removed

    def test_empty_batch_is_a_no_op(self):
        query = "Z := SELECT (x) FROM R(x, y);"
        mat, delta = _check(query, {"R": [(1, 2)]}, {})
        assert delta.inserted_tuples == 0
        assert delta.affected_guard_tuples == 0

    def test_insert_creates_missing_relation(self):
        # S is absent from the seed database; the batch brings it to life.
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x);"
        database = Database.from_dict({"R": [(1, 2), (3, 4)]})
        mat, delta = _check(query, database, {"S": [(1,)]})
        assert delta.added == {"Z": frozenset({(1,)})}

    def test_insert_into_output_relation_is_rejected(self):
        query = "Z := SELECT (x) FROM R(x, y);"
        with Gumbo() as gumbo:
            db = Database.from_dict({"R": [(1, 2)]})
            mat = gumbo.materialize(query, db, None)
            with pytest.raises(IncrementalError):
                gumbo.execute_delta(mat, {"Z": [(9,)]})

    def test_guard_constants_and_repeated_variables(self):
        query = "Z := SELECT (x) FROM R(x, x, 1) WHERE S(x);"
        _check(
            query,
            {"R": [(2, 2, 1), (3, 4, 1), (5, 5, 9)], "S": [(2,)]},
            {"R": [(7, 7, 1)], "S": [(7,), (5,)]},
        )

    def test_boolean_keyless_conditional_flip_touches_every_row(self):
        # W shares no variable with the guard: flipping it re-evaluates all.
        query = "Z := SELECT (x) FROM R(x) WHERE NOT W(z);"
        mat, delta = _check(
            query,
            {"R": [(1,), (2,), (3,)]},
            {"W": [(0,)]},
        )
        assert delta.removed == {"Z": frozenset({(1,), (2,), (3,)})}
        assert delta.affected_guard_tuples == 3


class TestEngineSeam:
    def test_engine_and_direct_modes_agree(self):
        query = (
            "Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);\n"
            "Z2 := SELECT (y) FROM Z1(x, y) WHERE U(y) OR NOT S(x);"
        )
        data = {
            "R": [(1, 2), (3, 4), (5, 6)],
            "S": [(1,), (3,)],
            "T": [(6,)],
            "U": [(2,)],
        }
        inserts = {"T": [(2,)], "S": [(5,)], "R": [(7, 8)], "U": [(8,)]}
        engine_mat, _ = _check(query, dict(data), inserts, mode="engine")
        direct_mat, _ = _check(query, dict(data), inserts, mode="direct")
        assert engine_mat.answers() == direct_mat.answers()

    def test_parallel_backend_refresh_matches(self):
        query = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
        data = {"R": [(1, 2), (3, 4)], "S": [(1,)]}
        _check(query, data, {"S": [(3,)], "T": [(2,)]}, backend="parallel")

    def test_refresh_counts_engine_runs(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x);"
        mat, delta = _check(query, {"R": [(1, 2)]}, {"S": [(1,)]})
        assert delta.engine_runs == 1
        assert delta.simulated_delta_s > 0.0

    def test_materialization_repr_and_result_refreshed_in_place(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x);"
        with Gumbo() as gumbo:
            db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
            mat = gumbo.materialize(query, db, "auto")
            result = mat.result  # held by a caller, refreshed in place
            assert result.output().tuples() == {(1,)}
            gumbo.execute_delta(mat, {"S": [(3,)]})
            assert result.output().tuples() == {(1,), (3,)}
            assert mat.refreshes == 1
            assert "refreshes=1" in repr(mat)

    def test_repeated_refreshes_accumulate(self):
        query = "Z := SELECT (x) FROM R(x, y) WHERE S(x) AND NOT T(y);"
        with Gumbo() as gumbo:
            db = Database.from_dict({"R": [(1, 2), (3, 4)]})
            mat = gumbo.materialize(query, db, None)
            gumbo.execute_delta(mat, {"S": [(1,)]})
            gumbo.execute_delta(mat, {"S": [(3,)], "T": [(2,)]})
            gumbo.execute_delta(mat, {"R": [(5, 5)], "S": [(5,)]})
            expected = _recompute_answers(gumbo, query, db, {})
            assert mat.answers() == expected


# -- hypothesis property: incremental == recompute ------------------------------

_ORACLE = None


def _shared_oracle() -> DifferentialOracle:
    global _ORACLE
    if _ORACLE is None:
        _ORACLE = DifferentialOracle(
            backends=("serial",), include_dynamic=False, check_metrics=False
        )
    return _ORACLE


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    index=st.integers(min_value=0, max_value=31),
)
def test_property_incremental_equals_recompute(seed, index):
    """Random program + random insert batch: refresh == full recompute."""
    case = generate_case(seed, index)
    inserts = generate_insert_batch(seed, index, case.program)
    divergences = _shared_oracle().check_incremental(
        case.program, case.database, inserts
    )
    assert not divergences, "\n".join(str(d) for d in divergences)


# -- the oracle campaign ---------------------------------------------------------


def test_incremental_oracle_campaign_200_cases_both_backends():
    """≥200 cases, all applicable strategies × both backends: no divergence."""
    report = run_fuzz(
        FuzzOptions(
            seed=29,
            iterations=200,
            workers=2,
            incremental=True,
            stop_on_failure=False,
        )
    )
    details = "\n\n".join(c.describe() for c in report.counterexamples)
    assert report.ok, f"incremental oracle found divergences:\n{details}"
    assert report.cases_run == 200
    # The sweep covered a real matrix: strategies × (2 backends + direct).
    assert report.combinations_checked >= 200 * 3


def test_corrupted_delta_rule_is_detected_and_shrunk(monkeypatch):
    """Breaking removal propagation must surface as incremental divergences."""
    from repro.incremental.materialize import _StatementState

    original = _StatementState._bump

    def corrupted(self, out, delta, added, removed):
        if delta < 0:
            return  # deletions silently dropped: negation handling broken
        original(self, out, delta, added, removed)

    monkeypatch.setattr(_StatementState, "_bump", corrupted)
    report = run_fuzz(
        FuzzOptions(seed=5, iterations=40, backends=("serial",), incremental=True)
    )
    assert not report.ok
    counterexample = report.counterexamples[0]
    assert counterexample.inserts is not None
    assert any(
        d.kind in ("incremental", "error")
        for d in counterexample.shrunk_divergences
    )
    script = counterexample.script()
    assert "check_incremental" in script
    assert "inserts" in script
