"""Unit tests for the reference (semantics-by-definition) evaluator."""

import pytest

from repro.model.atoms import Atom
from repro.model.database import Database
from repro.model.terms import Variable
from repro.query.bsgf import BSGFQuery
from repro.query.parser import parse_bsgf, parse_sgf
from repro.query.reference import (
    evaluate_bsgf,
    evaluate_semijoin,
    evaluate_sgf,
    relations_equal,
    result_sets,
)

from helpers import small_database

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestExampleOne:
    """The intersection / difference / semi-join / anti-join queries of Example 1."""

    @pytest.fixture
    def db(self):
        return Database.from_dict({"R": [(1,), (2,), (3,)], "S": [(2,), (3,), (4,)]})

    def test_intersection(self, db):
        query = parse_bsgf("Z1 := SELECT x FROM R(x) WHERE S(x);")
        assert set(evaluate_bsgf(query, db)) == {(2,), (3,)}

    def test_difference(self, db):
        query = parse_bsgf("Z2 := SELECT x FROM R(x) WHERE NOT S(x);")
        assert set(evaluate_bsgf(query, db)) == {(1,)}

    def test_semijoin(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(2, 9), (7, 7)]})
        query = parse_bsgf("Z3 := SELECT (x, y) FROM R(x, y) WHERE S(y, z);")
        assert set(evaluate_bsgf(query, db)) == {(1, 2)}

    def test_antijoin(self):
        db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(2, 9), (7, 7)]})
        query = parse_bsgf("Z4 := SELECT (x, y) FROM R(x, y) WHERE NOT S(y, z);")
        assert set(evaluate_bsgf(query, db)) == {(3, 4)}


class TestBSGFSemantics:
    def test_guard_constants_filter(self):
        db = Database.from_dict({"R": [(1, 2, 4), (1, 2, 5)], "S": [(1,)]})
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y, 4) WHERE S(x);")
        assert set(evaluate_bsgf(query, db)) == {(1, 2)}

    def test_repeated_guard_variables(self):
        db = Database.from_dict({"R": [(1, 1), (1, 2)]})
        query = BSGFQuery("Z", (X,), Atom("R", (X, X)))
        assert set(evaluate_bsgf(query, db)) == {(1,)}

    def test_existential_conditional_variable(self):
        # T(x, z): z is existentially quantified.
        db = Database.from_dict({"R": [(1, 2), (3, 4)], "T": [(1, 99)]})
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE T(x, z);")
        assert set(evaluate_bsgf(query, db)) == {(1, 2)}

    def test_boolean_combination(self):
        db = small_database()
        query = parse_bsgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE (S(x) AND NOT T(y)) OR U(x);"
        )
        # R = (1,2),(3,4),(5,6),(7,8); S={1,5,9}; T={4,6}; U={7,1}
        # (1,2): S(1) ok, T(2) false -> true. (3,4): S no, U no -> false.
        # (5,6): S(5) ok but T(6) true -> first false; U(5) false -> false.
        # (7,8): U(7) -> true.
        assert set(evaluate_bsgf(query, db)) == {(1, 2), (7, 8)}

    def test_missing_guard_relation_gives_empty(self):
        query = parse_bsgf("Z := SELECT x FROM Nothing(x);")
        out = evaluate_bsgf(query, small_database())
        assert len(out) == 0

    def test_missing_conditional_relation_is_false(self):
        db = Database.from_dict({"R": [(1,)]})
        query = parse_bsgf("Z := SELECT x FROM R(x) WHERE Missing(x);")
        assert len(evaluate_bsgf(query, db)) == 0
        negated = parse_bsgf("Z := SELECT x FROM R(x) WHERE NOT Missing(x);")
        assert set(evaluate_bsgf(negated, db)) == {(1,)}

    def test_no_where_clause_projects_guard(self):
        db = Database.from_dict({"R": [(1, 2), (1, 3)]})
        query = parse_bsgf("Z := SELECT x FROM R(x, y);")
        assert set(evaluate_bsgf(query, db)) == {(1,)}

    def test_output_relation_name_and_arity(self):
        db = Database.from_dict({"R": [(1, 2)]})
        query = parse_bsgf("Out := SELECT (x, y) FROM R(x, y);")
        out = evaluate_bsgf(query, db)
        assert out.name == "Out"
        assert out.arity == 2

    def test_projection_deduplicates(self):
        db = Database.from_dict({"R": [(1, 2), (1, 3)], "S": [(1,)]})
        query = parse_bsgf("Z := SELECT x FROM R(x, y) WHERE S(x);")
        assert len(evaluate_bsgf(query, db)) == 1


class TestUniquenessQueryExample:
    def test_z5_from_paper(self):
        # Z5 selects pairs where exactly one of S(1, x), S(y, 10) holds.
        db = Database.from_dict(
            {
                "R": [(5, 6, 4), (7, 8, 4), (9, 10, 4), (1, 2, 5)],
                "S": [(1, 5), (8, 10), (1, 9)],
            }
        )
        text = (
            "Z5 := SELECT (x, y) FROM R(x, y, 4) "
            "WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));"
        )
        query = parse_bsgf(text)
        # (5,6): S(1,5) yes, S(6,10) no -> true.
        # (7,8): S(1,7) no, S(8,10) yes -> true.
        # (9,10): S(1,9) yes, S(10,10) no -> true.
        # (1,2): guard constant mismatch (third column 5) -> excluded.
        assert set(evaluate_bsgf(query, db)) == {(5, 6), (7, 8), (9, 10)}


class TestSGFEvaluation:
    def test_bookstore_example(self):
        db = Database.from_dict(
            {
                "Amaz": [("t1", "a1", "bad"), ("t2", "a2", "good")],
                "BN": [("t1", "a1", "bad")],
                "BD": [("t1", "a1", "bad")],
                "Upcoming": [("n1", "a1"), ("n2", "a2")],
            }
        )
        text = """
        Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
              WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
        Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);
        """
        results = evaluate_sgf(parse_sgf(text), db)
        assert set(results["Z1"]) == {("a1",)}
        assert set(results["Z2"]) == {("n2", "a2")}

    def test_intermediates_can_be_dropped(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(1,)], "T": [(2,)]})
        text = """
        Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);
        Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(y);
        """
        results = evaluate_sgf(parse_sgf(text), db, keep_intermediates=False)
        assert set(results) == {"Z2"}

    def test_input_database_not_modified(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
        text = "Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);"
        evaluate_sgf(parse_sgf(text), db)
        assert "Z1" not in db


class TestHelpers:
    def test_evaluate_semijoin(self):
        db = Database.from_dict({"R": [(1, 2), (4, 5)], "S": [(2, 3)]})
        out = evaluate_semijoin(
            Atom.of("R", "x", "z"), Atom.of("S", "z", "y"), (X,), db
        )
        assert set(out) == {(1,)}

    def test_relations_equal(self):
        db = Database.from_dict({"R": [(1,)], "S": [(1,)]})
        assert relations_equal(db["R"], db["S"])

    def test_result_sets(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        sets = result_sets(evaluate_sgf(query, db))
        assert sets == {"Z": frozenset({(1, 2)})}
