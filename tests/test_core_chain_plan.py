"""Unit tests for DNF rewriting, sequential chain jobs and plan builders."""

import pytest

from repro.core.chain import Literal, SemiJoinChainJob, UnionProjectJob, to_dnf
from repro.core.plan import (
    BasicPlan,
    build_one_round_program,
    build_sequential_program,
    build_sequential_program_for_set,
    build_two_round_program,
    eval_targets_for,
)
from repro.mapreduce.engine import MapReduceEngine
from repro.model.atoms import Atom
from repro.model.database import Database
from repro.model.terms import Variable
from repro.query.conditions import TRUE, And, Not, Or, atom
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf

from helpers import (
    as_set,
    disjunctive_query,
    shared_key_query,
    simple_query,
    small_database,
    star_database,
    star_query,
)

X, Y = Variable("x"), Variable("y")
S_X, T_Y, U_Z = atom("S", "x"), atom("T", "y"), atom("U", "z")


def _dnf_sets(condition):
    return {
        frozenset((lit.atom, lit.positive) for lit in disjunct)
        for disjunct in to_dnf(condition)
    }


class TestDNF:
    def test_atom(self):
        assert to_dnf(S_X) == [[Literal(S_X.atom, True)]]

    def test_negated_atom(self):
        assert to_dnf(Not(S_X)) == [[Literal(S_X.atom, False)]]

    def test_true_condition(self):
        assert to_dnf(TRUE) == [[]]

    def test_negated_true_is_unsatisfiable(self):
        assert to_dnf(Not(TRUE)) == []

    def test_conjunction_stays_single_disjunct(self):
        disjuncts = to_dnf(And(S_X, T_Y))
        assert len(disjuncts) == 1
        assert len(disjuncts[0]) == 2

    def test_disjunction_splits(self):
        assert len(to_dnf(Or(S_X, T_Y))) == 2

    def test_distribution(self):
        # S AND (T OR U) -> (S AND T) OR (S AND U)
        condition = And(S_X, Or(T_Y, U_Z))
        assert _dnf_sets(condition) == {
            frozenset({(S_X.atom, True), (T_Y.atom, True)}),
            frozenset({(S_X.atom, True), (U_Z.atom, True)}),
        }

    def test_de_morgan(self):
        condition = Not(And(S_X, T_Y))
        assert _dnf_sets(condition) == {
            frozenset({(S_X.atom, False)}),
            frozenset({(T_Y.atom, False)}),
        }

    def test_double_negation(self):
        assert _dnf_sets(Not(Not(S_X))) == {frozenset({(S_X.atom, True)})}

    def test_dnf_preserves_semantics_on_all_assignments(self):
        condition = Or(And(S_X, Not(T_Y)), And(Not(S_X), U_Z))
        atoms = condition.atoms()
        disjuncts = to_dnf(condition)
        for mask in range(2 ** len(atoms)):
            true_atoms = {a for i, a in enumerate(atoms) if mask & (1 << i)}
            direct = condition.evaluate(lambda a: a in true_atoms)
            via_dnf = any(
                all(
                    (lit.atom in true_atoms) == lit.positive
                    for lit in disjunct
                )
                for disjunct in disjuncts
            )
            assert direct == via_dnf


class TestChainJobs:
    def test_semijoin_step_filters(self):
        db = small_database()
        job = SemiJoinChainJob(
            "step",
            input_name="R",
            guard_atom=Atom.of("R", "x", "y"),
            literal=Literal(Atom.of("S", "x"), True),
            output_name="Out",
        )
        result = MapReduceEngine().run_job(job, db)
        assert as_set(result.outputs["Out"]) == {(1, 2), (5, 6)}

    def test_antijoin_step(self):
        db = small_database()
        job = SemiJoinChainJob(
            "step",
            input_name="R",
            guard_atom=Atom.of("R", "x", "y"),
            literal=Literal(Atom.of("S", "x"), False),
            output_name="Out",
        )
        result = MapReduceEngine().run_job(job, db)
        assert as_set(result.outputs["Out"]) == {(3, 4), (7, 8)}

    def test_projection_applied_when_requested(self):
        db = small_database()
        job = SemiJoinChainJob(
            "step",
            input_name="R",
            guard_atom=Atom.of("R", "x", "y"),
            literal=Literal(Atom.of("S", "x"), True),
            output_name="Out",
            projection=(X,),
        )
        result = MapReduceEngine().run_job(job, db)
        assert as_set(result.outputs["Out"]) == {(1,), (5,)}

    def test_union_project_job_dedups(self):
        db = Database.from_dict({"A": [(1, 2), (3, 4)], "B": [(1, 2), (5, 6)]})
        job = UnionProjectJob(
            "union", ["A", "B"], Atom.of("R", "x", "y"), (X, Y), "Out"
        )
        result = MapReduceEngine().run_job(job, db)
        assert as_set(result.outputs["Out"]) == {(1, 2), (3, 4), (5, 6)}

    def test_union_needs_inputs(self):
        with pytest.raises(ValueError):
            UnionProjectJob("union", [], Atom.of("R", "x"), (X,), "Out")


class TestSequentialPrograms:
    @pytest.mark.parametrize(
        "query_factory, db_factory",
        [
            (simple_query, small_database),
            (disjunctive_query, small_database),
            (star_query, star_database),
            (shared_key_query, star_database),
        ],
    )
    def test_matches_reference(self, query_factory, db_factory):
        query, db = query_factory(), db_factory()
        program = build_sequential_program(query)
        result = MapReduceEngine().run_program(program, db)
        assert as_set(result.outputs[query.output]) == as_set(evaluate_bsgf(query, db))

    def test_conjunctive_query_has_one_round_per_atom(self):
        program = build_sequential_program(star_query())
        assert program.rounds() == 4
        assert len(program) == 4

    def test_disjunctive_query_gets_union_round(self):
        program = build_sequential_program(disjunctive_query())
        # Two one-step branches plus the union round.
        assert program.rounds() == 2
        assert len(program) == 3

    def test_no_condition_single_job(self):
        query = parse_bsgf("Z := SELECT x FROM R(x, y);")
        program = build_sequential_program(query)
        assert len(program) == 1
        db = small_database()
        result = MapReduceEngine().run_program(program, db)
        assert as_set(result.outputs["Z"]) == as_set(evaluate_bsgf(query, db))

    def test_unsatisfiable_condition_gives_empty_output(self):
        query = parse_bsgf("Z := SELECT x FROM R(x, y) WHERE S(x) AND NOT S(x);")
        program = build_sequential_program(query)
        result = MapReduceEngine().run_program(program, small_database())
        assert as_set(result.outputs["Z"]) == frozenset()

    def test_sequential_set_runs_queries_one_after_the_other(self):
        q1 = parse_bsgf("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        q2 = parse_bsgf("Z2 := SELECT (x, y) FROM R(x, y) WHERE T(y);")
        program = build_sequential_program_for_set([q1, q2])
        assert program.rounds() == 2
        db = small_database()
        result = MapReduceEngine().run_program(program, db)
        assert as_set(result.outputs["Z1"]) == as_set(evaluate_bsgf(q1, db))
        assert as_set(result.outputs["Z2"]) == as_set(evaluate_bsgf(q2, db))

    def test_sequential_set_needs_queries(self):
        with pytest.raises(ValueError):
            build_sequential_program_for_set([])


class TestBasicPlan:
    def test_partition_must_cover_all_specs(self):
        query = star_query()
        specs = query.semijoin_specs()
        with pytest.raises(ValueError):
            BasicPlan([query], [[specs[0]]])

    def test_num_jobs_and_describe(self):
        query = star_query()
        specs = query.semijoin_specs()
        plan = BasicPlan([query], [specs[:2], specs[2:]])
        assert plan.num_jobs == 3
        assert plan.rounds == 2
        description = plan.describe()
        assert description.startswith("EVAL(OUT)")
        assert description.count("MSJ(") == 2

    def test_to_program_structure(self):
        query = star_query()
        specs = query.semijoin_specs()
        program = BasicPlan([query], [specs[:2], specs[2:]]).to_program()
        assert program.rounds() == 2
        assert len(program) == 3

    def test_figure2_alternative_plans_agree(self):
        """The three alternative plans of Figure 2 produce the same answer."""
        db = Database.from_dict(
            {
                "R": [(1, 2), (3, 4), (5, 6)],
                "S": [(1, 9), (5, 9)],
                "T": [(2,), (4,)],
                "U": [(5,), (7,)],
            }
        )
        query = parse_bsgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));"
        )
        specs = query.semijoin_specs()
        partitions = [
            [[specs[0]], [specs[1]], [specs[2]]],      # Figure 2 (a)
            [[specs[0], specs[2]], [specs[1]]],        # Figure 2 (b)
            [[specs[0], specs[1], specs[2]]],          # Figure 2 (c)
        ]
        reference = as_set(evaluate_bsgf(query, db))
        for partition in partitions:
            program = build_two_round_program([query], partition)
            result = MapReduceEngine().run_program(program, db)
            assert as_set(result.outputs["Z"]) == reference

    def test_eval_targets_for(self):
        query = star_query()
        (target,) = eval_targets_for([query])
        assert target.intermediates == tuple(s.output for s in query.semijoin_specs())

    def test_one_round_program_single_job(self):
        program = build_one_round_program([shared_key_query()])
        assert len(program) == 1
        assert program.rounds() == 1
