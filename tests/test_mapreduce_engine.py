"""Unit tests for the MapReduce execution engine."""

import pytest

from repro.cost.constants import CostConstants
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob, REDUCERS_BY_INPUT
from repro.mapreduce.program import MRProgram
from repro.model.database import Database


class WordCountJob(MapReduceJob):
    """Counts occurrences of each value in a unary relation."""

    def __init__(self, job_id="wordcount", source="Words"):
        super().__init__(job_id)
        self.source = source

    def input_relations(self):
        return [self.source]

    def map(self, relation, row):
        return [((row[0],), 1)]

    def reduce(self, key, values):
        yield ("Counts", (key[0], sum(values)))

    def output_schema(self):
        return {"Counts": 2}


class FilterJob(MapReduceJob):
    """Keeps rows of 'Counts' with count >= threshold (tests chaining)."""

    def __init__(self, job_id="filter", threshold=2):
        super().__init__(job_id)
        self.threshold = threshold

    def input_relations(self):
        return ["Counts"]

    def map(self, relation, row):
        return [(tuple(row), None)]

    def reduce(self, key, values):
        if key[1] >= self.threshold:
            yield ("Frequent", tuple(key))

    def output_schema(self):
        return {"Frequent": 2}


@pytest.fixture
def words_db():
    return Database.from_dict(
        {"Words": [("a", 1), ("a", 2), ("b", 3), ("c", 4), ("a", 5)]}
    )


@pytest.fixture
def engine():
    return MapReduceEngine()


class TestRunJob:
    def test_wordcount_results(self, engine):
        db = Database.from_dict({"Words": [(w, i) for i, w in enumerate("aabca")]})
        result = engine.run_job(WordCountJob(), db)
        counts = dict(result.outputs["Counts"].tuples())
        assert counts == {"a": 3, "b": 1, "c": 1}

    def test_metrics_partitions(self, engine, words_db):
        result = engine.run_job(WordCountJob(), words_db)
        metrics = result.metrics
        assert len(metrics.partitions) == 1
        partition = metrics.partitions[0]
        assert partition.relation == "Words"
        assert partition.input_records == 5
        assert partition.output_records == 5
        assert partition.input_mb == pytest.approx(words_db["Words"].size_mb())

    def test_output_metrics(self, engine, words_db):
        result = engine.run_job(WordCountJob(), words_db)
        assert result.metrics.output_records == 3
        assert result.metrics.output_mb == pytest.approx(
            result.outputs["Counts"].size_mb()
        )

    def test_total_time_includes_overhead(self, engine, words_db):
        result = engine.run_job(WordCountJob(), words_db)
        assert result.metrics.total_time >= engine.constants.job_overhead

    def test_missing_input_relation_treated_as_empty(self, engine):
        result = engine.run_job(WordCountJob(source="Missing"), Database())
        assert len(result.outputs["Counts"]) == 0
        assert result.metrics.input_mb == 0.0

    def test_task_durations_cover_cost(self, engine, words_db):
        result = engine.run_job(WordCountJob(), words_db)
        metrics = result.metrics
        assert len(metrics.map_task_durations) == metrics.mappers
        assert len(metrics.reduce_task_durations) == metrics.reducers
        assert sum(metrics.map_task_durations) == pytest.approx(
            metrics.breakdown.map, rel=1e-6
        )

    def test_undeclared_output_relation_rejected(self, engine, words_db):
        class BadJob(WordCountJob):
            def reduce(self, key, values):
                yield ("Other", (key[0],))

        with pytest.raises(KeyError):
            engine.run_job(BadJob(), words_db)

    def test_reducer_allocation_by_input(self, words_db):
        engine = MapReduceEngine(mb_per_reducer_input=words_db["Words"].size_mb() / 2)
        job = WordCountJob()
        job.reducer_allocation = REDUCERS_BY_INPUT
        result = engine.run_job(job, words_db)
        assert result.metrics.reducers == 2

    def test_fixed_reducers(self, engine, words_db):
        job = WordCountJob()
        job.fixed_reducers = 7
        result = engine.run_job(job, words_db)
        assert result.metrics.reducers == 7


class TestRunProgram:
    def test_two_round_program_chains_outputs(self, engine, words_db):
        program = MRProgram("chain")
        program.add_job(WordCountJob())
        program.add_job(FilterJob(threshold=2), depends_on=["wordcount"])
        result = engine.run_program(program, words_db)
        assert set(result.outputs["Frequent"]) == {("a", 3)}
        assert result.metrics.rounds == 2
        assert len(result.metrics.level_net_times) == 2

    def test_program_metrics_aggregate_jobs(self, engine, words_db):
        program = MRProgram("chain")
        program.add_job(WordCountJob())
        program.add_job(FilterJob(), depends_on=["wordcount"])
        result = engine.run_program(program, words_db)
        job_total = sum(
            m.total_time for m in result.metrics.job_metrics.values()
        )
        assert result.metrics.total_time == pytest.approx(job_total)
        assert result.metrics.net_time == pytest.approx(
            sum(result.metrics.level_net_times)
        )

    def test_net_time_counts_overhead_once_per_level(self, words_db):
        constants = CostConstants.paper_values()
        engine = MapReduceEngine(constants=constants)
        program = MRProgram("parallel")
        program.add_job(WordCountJob("wc1"))
        program.add_job(WordCountJob("wc2"))
        result = engine.run_program(program, words_db)
        # Two jobs in one round: net time includes a single job overhead.
        assert result.metrics.rounds == 1
        assert result.metrics.net_time < 2 * constants.job_overhead + 1.0

    def test_input_database_is_not_modified(self, engine, words_db):
        program = MRProgram("p")
        program.add_job(WordCountJob())
        engine.run_program(program, words_db)
        assert "Counts" not in words_db

    def test_outputs_visible_in_result_database(self, engine, words_db):
        program = MRProgram("p")
        program.add_job(WordCountJob())
        result = engine.run_program(program, words_db)
        assert "Counts" in result.database

    def test_smaller_cluster_never_faster(self, words_db):
        big = MapReduceEngine(cluster=ClusterConfig(nodes=10))
        small = MapReduceEngine(cluster=ClusterConfig(nodes=1))
        program_big = MRProgram("p")
        program_big.add_job(WordCountJob())
        program_small = MRProgram("p")
        program_small.add_job(WordCountJob())
        net_big = big.run_program(program_big, words_db).metrics.net_time
        net_small = small.run_program(program_small, words_db).metrics.net_time
        assert net_small >= net_big - 1e-9
