"""Unit tests for MSJ/EVAL messages and message packing."""

from repro.core.messages import (
    AssertMessage,
    FIELD_BYTES,
    GuardMessage,
    MembershipMessage,
    PackedMessages,
    RequestMessage,
    TAG_BYTES,
    TUPLE_REFERENCE_BYTES,
    pack_messages,
    unpack_messages,
)


class TestMessageSizes:
    def test_request_full_tuple(self):
        message = RequestMessage(0, (1, 2, 3), by_reference=False)
        assert message.size_bytes() == TAG_BYTES + 3 * FIELD_BYTES

    def test_request_by_reference(self):
        message = RequestMessage(0, (1, 2, 3), by_reference=True)
        assert message.size_bytes() == TAG_BYTES + TUPLE_REFERENCE_BYTES

    def test_reference_smaller_than_tuple_for_wide_rows(self):
        wide = tuple(range(4))
        assert (
            RequestMessage(0, wide, True).size_bytes()
            < RequestMessage(0, wide, False).size_bytes()
        )

    def test_empty_payload_still_charged(self):
        assert RequestMessage(0, (), False).size_bytes() == TAG_BYTES + FIELD_BYTES

    def test_assert_guard_membership_sizes(self):
        assert AssertMessage(3).size_bytes() == TAG_BYTES
        assert GuardMessage(1).size_bytes() == TAG_BYTES
        assert MembershipMessage(1, 2).size_bytes() == TAG_BYTES

    def test_str_representations(self):
        assert "Req" in str(RequestMessage(1, (5,)))
        assert "Assert" in str(AssertMessage(2))
        assert "Guard" in str(GuardMessage(0))
        assert "Member" in str(MembershipMessage(0, 1))


class TestPacking:
    def test_pack_returns_single_value(self):
        values = [AssertMessage(0), RequestMessage(0, (1,))]
        packed = pack_messages(values)
        assert len(packed) == 1
        assert isinstance(packed[0], PackedMessages)

    def test_duplicate_asserts_are_collapsed(self):
        values = [AssertMessage(0), AssertMessage(0), AssertMessage(1)]
        packed = PackedMessages(values)
        assert len(packed) == 2

    def test_requests_are_preserved(self):
        values = [RequestMessage(0, (1,)), RequestMessage(0, (1,))]
        packed = PackedMessages(values)
        assert len(packed) == 2

    def test_packed_size_is_sum_of_members(self):
        values = [AssertMessage(0), RequestMessage(1, (1, 2))]
        packed = PackedMessages(values)
        assert packed.size_bytes() == sum(v.size_bytes() for v in values)

    def test_packing_reduces_size_with_duplicates(self):
        values = [AssertMessage(0)] * 5
        assert PackedMessages(values).size_bytes() < sum(v.size_bytes() for v in values)

    def test_unpack_flattens(self):
        values = [AssertMessage(0), RequestMessage(0, (1,))]
        packed = pack_messages(values)
        unpacked = list(unpack_messages(packed))
        assert unpacked == list(PackedMessages(values))

    def test_unpack_passes_plain_values_through(self):
        values = [AssertMessage(0), RequestMessage(0, (1,))]
        assert list(unpack_messages(values)) == values

    def test_iteration_and_repr(self):
        packed = PackedMessages([AssertMessage(0)])
        assert list(iter(packed)) == [AssertMessage(0)]
        assert "PackedMessages" in repr(packed)
