"""Unit tests for repro.model.atoms: conformance, matching, projection."""

import pytest

from repro.model.atoms import Atom, Fact, facts_conforming
from repro.model.terms import Constant, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")


class TestAtomBasics:
    def test_of_constructor_coerces_terms(self):
        atom = Atom.of("R", "x", "y", 4)
        assert atom.terms == (X, Y, Constant(4))

    def test_arity(self):
        assert Atom.of("R", "x", "y").arity == 2

    def test_variables_in_order(self):
        atom = Atom("R", (Y, X, Y, Constant(1)))
        assert atom.variables == (Y, X)

    def test_constants(self):
        atom = Atom("R", (X, Constant(1), Constant(2), Constant(1)))
        assert atom.constants == (Constant(1), Constant(2))

    def test_variable_set_and_shared(self):
        a = Atom.of("R", "x", "y")
        b = Atom.of("S", "y", "z")
        assert a.variable_set() == frozenset({X, Y})
        assert a.shared_variables(b) == frozenset({Y})

    def test_positions_of(self):
        atom = Atom("R", (X, Y, X, Z))
        assert atom.positions_of(X) == (0, 2)
        assert atom.positions_of(Variable("missing")) == ()

    def test_rename(self):
        atom = Atom.of("R", "x", "y")
        renamed = atom.rename({X: Z})
        assert renamed == Atom("R", (Z, Y))

    def test_str(self):
        assert str(Atom.of("R", "x", 4)) == "R(x, 4)"

    def test_empty_relation_name_rejected(self):
        with pytest.raises(ValueError):
            Atom("", (X,))

    def test_hashable_and_equal(self):
        assert Atom.of("R", "x") == Atom.of("R", "x")
        assert len({Atom.of("R", "x"), Atom.of("R", "x")}) == 1


class TestConformance:
    def test_example_from_paper(self):
        # (1, 2, 1, 3) conforms to (x, 2, x, y)
        atom = Atom("R", (X, Constant(2), X, Y))
        assert atom.conforms((1, 2, 1, 3))

    def test_repeated_variable_mismatch(self):
        atom = Atom("R", (X, X))
        assert atom.conforms((1, 1))
        assert not atom.conforms((1, 2))

    def test_constant_mismatch(self):
        atom = Atom("R", (X, Constant(4)))
        assert atom.conforms((9, 4))
        assert not atom.conforms((9, 5))

    def test_arity_mismatch(self):
        atom = Atom.of("R", "x", "y")
        assert not atom.conforms((1,))
        assert not atom.conforms((1, 2, 3))

    def test_none_value_can_be_bound(self):
        atom = Atom("R", (X, X))
        assert atom.conforms((None, None))
        assert not atom.conforms((None, 1))

    def test_match_returns_binding(self):
        atom = Atom("R", (X, Y, X))
        binding = atom.match((1, 2, 1))
        assert binding == {X: 1, Y: 2}

    def test_match_returns_none_on_mismatch(self):
        atom = Atom("R", (X, Y, X))
        assert atom.match((1, 2, 3)) is None


class TestProjection:
    def test_projection_example_from_paper(self):
        # f = R(1, 2, 1, 3), alpha = R(x, y, x, z): pi_{alpha; x, z}(f) = (1, 3)
        atom = Atom("R", (X, Y, X, Z))
        assert atom.project((1, 2, 1, 3), (X, Z)) == (1, 3)

    def test_projection_rejects_non_conforming(self):
        atom = Atom("R", (X, X))
        with pytest.raises(ValueError):
            atom.project((1, 2), (X,))

    def test_projection_rejects_unknown_variable(self):
        atom = Atom("R", (X,))
        with pytest.raises(ValueError):
            atom.project((1,), (Y,))

    def test_substitute(self):
        atom = Atom("R", (X, Constant(4), Y))
        assert atom.substitute({X: 1, Y: 2}) == (1, 4, 2)

    def test_substitute_unbound_variable(self):
        atom = Atom("R", (X, Y))
        with pytest.raises(ValueError):
            atom.substitute({X: 1})


class TestFact:
    def test_conforms_to_checks_relation_name(self):
        fact = Fact("R", (1, 2))
        assert fact.conforms_to(Atom.of("R", "x", "y"))
        assert not fact.conforms_to(Atom.of("S", "x", "y"))

    def test_project(self):
        fact = Fact("R", (1, 2, 1, 3))
        atom = Atom("R", (X, Y, X, Z))
        assert fact.project(atom, (X, Z)) == (1, 3)

    def test_project_wrong_relation(self):
        fact = Fact("S", (1,))
        with pytest.raises(ValueError):
            fact.project(Atom.of("R", "x"), (X,))

    def test_arity_and_str(self):
        fact = Fact("R", (1, "a"))
        assert fact.arity == 2
        assert str(fact) == "R(1, 'a')"

    def test_facts_conforming_filter(self):
        facts = [Fact("R", (1, 1)), Fact("R", (1, 2)), Fact("S", (3, 3))]
        atom = Atom("R", (X, X))
        assert list(facts_conforming(facts, atom)) == [Fact("R", (1, 1))]
