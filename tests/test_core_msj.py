"""Unit tests for the MSJ operator (Algorithm 1)."""

import pytest

from repro.core.messages import AssertMessage, PackedMessages, RequestMessage
from repro.core.msj import MSJJob, multi_semi_join
from repro.core.options import GumboOptions
from repro.mapreduce.engine import MapReduceEngine
from repro.model.atoms import Atom
from repro.model.database import Database
from repro.model.terms import Variable
from repro.query.bsgf import SemiJoinSpec
from repro.query.reference import evaluate_semijoin

from helpers import star_database

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def spec(output, guard, conditional, projection):
    return SemiJoinSpec(output, guard, conditional, tuple(projection))


@pytest.fixture
def engine():
    return MapReduceEngine()


class TestExample3:
    """Example 3 of the paper: Z := pi_x(R(x, z) ⋉ S(z, y))."""

    def test_single_semijoin(self, engine):
        db = Database.from_dict({"R": [(1, 2), (4, 5)], "S": [(2, 3)]})
        job = MSJJob(
            "msj",
            [spec("Z", Atom.of("R", "x", "z"), Atom.of("S", "z", "y"), (X,))],
        )
        result = engine.run_job(job, db)
        assert set(result.outputs["Z"]) == {(1,)}

    def test_mapper_messages(self):
        job = MSJJob(
            "msj",
            [spec("Z", Atom.of("R", "x", "z"), Atom.of("S", "z", "y"), (X,))],
            options=GumboOptions(tuple_reference=False),
        )
        guard_pairs = list(job.map("R", (1, 2)))
        assert guard_pairs == [((2,), RequestMessage(0, (1,), False))]
        cond_pairs = list(job.map("S", (2, 3)))
        assert cond_pairs == [((2,), AssertMessage(0))]


class TestMultiSemiJoin:
    def test_matches_reference_for_every_output(self, engine):
        db = star_database()
        guard = Atom.of("R", "x", "y", "z", "w")
        specs = [
            spec("X1", guard, Atom.of("S", "x"), (X, Y, Z, W)),
            spec("X2", guard, Atom.of("T", "y"), (X, Y, Z, W)),
            spec("X3", guard, Atom.of("U", "x"), (X, Y, Z, W)),
        ]
        outputs = multi_semi_join(specs, db, engine)
        for s in specs:
            reference = evaluate_semijoin(
                s.guard, s.conditional, s.projection, db, s.output
            )
            assert set(outputs[s.output]) == set(reference), s.output

    def test_different_guards_in_one_job(self, engine):
        db = Database.from_dict(
            {"R": [(1, 2)], "G": [(2, 9)], "S": [(1,)], "T": [(9,)]}
        )
        specs = [
            spec("X1", Atom.of("R", "x", "y"), Atom.of("S", "x"), (X, Y)),
            spec("X2", Atom.of("G", "x", "y"), Atom.of("T", "y"), (X, Y)),
        ]
        outputs = multi_semi_join(specs, db, engine)
        assert set(outputs["X1"]) == {(1, 2)}
        assert set(outputs["X2"]) == {(2, 9)}

    def test_same_relation_as_guard_and_conditional(self, engine):
        # Self semi-join: R(x, y) ⋉ R(y, z) keeps tuples whose y starts some tuple.
        db = Database.from_dict({"R": [(1, 2), (2, 3), (5, 9)]})
        specs = [spec("X", Atom.of("R", "x", "y"), Atom.of("R", "y", "z"), (X, Y))]
        outputs = multi_semi_join(specs, db, engine)
        reference = evaluate_semijoin(
            Atom.of("R", "x", "y"), Atom.of("R", "y", "z"), (X, Y), db
        )
        assert set(outputs["X"]) == set(reference) == {(1, 2)}

    def test_projection_applied_in_standalone_mode(self, engine):
        db = Database.from_dict({"R": [(1, 2), (1, 3)], "S": [(1,)]})
        specs = [spec("X", Atom.of("R", "x", "y"), Atom.of("S", "x"), (X,))]
        outputs = multi_semi_join(specs, db, engine)
        assert set(outputs["X"]) == {(1,)}

    def test_empty_conditional_relation(self, engine):
        db = Database.from_dict({"R": [(1, 2)]})
        specs = [spec("X", Atom.of("R", "x", "y"), Atom.of("S", "x"), (X, Y))]
        outputs = multi_semi_join(specs, db, engine)
        assert len(outputs["X"]) == 0

    def test_disjoint_join_key_behaves_existentially(self, engine):
        # Conditional shares no variable with the guard: any S fact suffices.
        db = Database.from_dict({"R": [(1, 2)], "S": [(99,)]})
        specs = [spec("X", Atom.of("R", "x", "y"), Atom.of("S", "q"), (X, Y))]
        outputs = multi_semi_join(specs, db, engine)
        assert set(outputs["X"]) == {(1, 2)}


class TestJobStructure:
    def test_input_relations_deduplicated(self):
        guard = Atom.of("R", "x", "y", "z", "w")
        specs = [
            spec("X1", guard, Atom.of("S", "x"), (X,)),
            spec("X2", guard, Atom.of("S", "y"), (X,)),
        ]
        job = MSJJob("msj", specs)
        assert list(job.input_relations()) == ["R", "S"]

    def test_duplicate_outputs_rejected(self):
        guard = Atom.of("R", "x")
        with pytest.raises(ValueError):
            MSJJob(
                "msj",
                [
                    spec("X", guard, Atom.of("S", "x"), (X,)),
                    spec("X", guard, Atom.of("T", "x"), (X,)),
                ],
            )

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            MSJJob("msj", [])

    def test_output_schema_standalone_vs_pipeline(self):
        guard = Atom.of("R", "x", "y", "z", "w")
        s = spec("X", guard, Atom.of("S", "x"), (X, Y))
        standalone = MSJJob("a", [s], emit_projection=True)
        pipeline = MSJJob("b", [s], emit_projection=False)
        assert standalone.output_schema() == {"X": 2}
        assert pipeline.output_schema() == {"X": 4}

    def test_shared_conditional_atom_asserted_once(self):
        guard1 = Atom.of("R", "x", "y")
        guard2 = Atom.of("G", "x", "y")
        shared = Atom.of("S", "x")
        specs = [
            spec("X1", guard1, shared, (X, Y)),
            spec("X2", guard2, shared, (X, Y)),
        ]
        job = MSJJob("msj", specs, options=GumboOptions(message_packing=False))
        pairs = list(job.map("S", (7,)))
        asserts = [v for _, v in pairs if isinstance(v, AssertMessage)]
        assert len(asserts) == 1

    def test_combiner_enabled_by_packing_option(self):
        guard = Atom.of("R", "x")
        s = spec("X", guard, Atom.of("S", "x"), (X,))
        assert MSJJob("a", [s], GumboOptions(message_packing=True)).uses_combiner()
        assert not MSJJob("a", [s], GumboOptions(message_packing=False)).uses_combiner()

    def test_combine_packs(self):
        guard = Atom.of("R", "x")
        s = spec("X", guard, Atom.of("S", "x"), (X,))
        job = MSJJob("a", [s])
        combined = job.combine((1,), [AssertMessage(0), AssertMessage(0)])
        assert len(combined) == 1
        assert isinstance(combined[0], PackedMessages)

    def test_output_tuple_bytes_with_reference(self):
        guard = Atom.of("R", "x", "y", "z", "w")
        s = spec("X", guard, Atom.of("S", "x"), (X, Y, Z, W))
        pipeline_ref = MSJJob("a", [s], GumboOptions(tuple_reference=True), False)
        pipeline_full = MSJJob("b", [s], GumboOptions(tuple_reference=False), False)
        standalone = MSJJob("c", [s], emit_projection=True)
        assert pipeline_ref.output_tuple_bytes("X") == 8
        assert pipeline_full.output_tuple_bytes("X") == 40
        assert standalone.output_tuple_bytes("X") is None
        assert pipeline_ref.output_tuple_bytes("unknown") is None


class TestOptimisationEffects:
    def test_packing_reduces_communication(self):
        db = star_database()
        guard = Atom.of("R", "x", "y", "z", "w")
        specs = [
            spec(f"X{i}", guard, Atom.of(rel, "x"), (X, Y, Z, W))
            for i, rel in enumerate(["S", "T", "U", "V"])
        ]
        engine = MapReduceEngine()
        packed_job = MSJJob("packed", specs, GumboOptions(message_packing=True))
        plain_job = MSJJob("plain", specs, GumboOptions(message_packing=False))
        packed = engine.run_job(packed_job, db).metrics.intermediate_mb
        plain = engine.run_job(plain_job, db).metrics.intermediate_mb
        assert packed < plain

    def test_tuple_reference_reduces_communication(self):
        db = star_database()
        guard = Atom.of("R", "x", "y", "z", "w")
        specs = [spec("X", guard, Atom.of("S", "x"), (X, Y, Z, W))]
        engine = MapReduceEngine()
        ref_job = MSJJob("ref", specs, GumboOptions(tuple_reference=True), False)
        full_job = MSJJob("full", specs, GumboOptions(tuple_reference=False), False)
        ref = engine.run_job(ref_job, db).metrics.intermediate_mb
        full = engine.run_job(full_job, db).metrics.intermediate_mb
        assert ref < full

    def test_packing_does_not_change_results(self):
        db = star_database()
        guard = Atom.of("R", "x", "y", "z", "w")
        specs = [
            spec(f"X{i}", guard, Atom.of(rel, "x"), (X, Y, Z, W))
            for i, rel in enumerate(["S", "T", "U", "V"])
        ]
        engine = MapReduceEngine()
        packed = engine.run_job(
            MSJJob("p", specs, GumboOptions(message_packing=True)), db
        )
        plain = engine.run_job(
            MSJJob("q", specs, GumboOptions(message_packing=False)), db
        )
        for name in packed.outputs:
            assert set(packed.outputs[name]) == set(plain.outputs[name])
