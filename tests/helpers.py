"""Shared fixtures and small databases used across the test suite."""

from __future__ import annotations

from repro.model.database import Database
from repro.model.terms import Variable
from repro.query.bsgf import BSGFQuery
from repro.query.parser import parse_bsgf, parse_sgf

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def small_database() -> Database:
    """A tiny database exercising matches, non-matches and negation."""
    return Database.from_dict(
        {
            "R": [(1, 2), (3, 4), (5, 6), (7, 8)],
            "S": [(1,), (5,), (9,)],
            "T": [(4,), (6,)],
            "U": [(7,), (1,)],
        }
    )


def star_database() -> Database:
    """A 4-ary guard with four unary conditionals (the A-query shape)."""
    return Database.from_dict(
        {
            "R": [
                (1, 2, 3, 4),
                (1, 1, 1, 1),
                (5, 6, 7, 8),
                (2, 4, 6, 8),
                (9, 9, 9, 9),
            ],
            "S": [(1,), (2,), (5,)],
            "T": [(2,), (6,), (9,)],
            "U": [(3,), (7,), (6,)],
            "V": [(4,), (8,), (9,)],
        }
    )


def simple_query() -> BSGFQuery:
    """``Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y)``."""
    return parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);")


def disjunctive_query() -> BSGFQuery:
    """``Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y)``."""
    return parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);")


def star_query() -> BSGFQuery:
    """The A1-shaped query over the star database."""
    return parse_bsgf(
        "OUT := SELECT (x, y, z, w) FROM R(x, y, z, w) "
        "WHERE S(x) AND T(y) AND U(z) AND V(w);"
    )


def shared_key_query() -> BSGFQuery:
    """The A3-shaped query (all conditionals on x) over the star database."""
    return parse_bsgf(
        "OUT := SELECT (x, y, z, w) FROM R(x, y, z, w) "
        "WHERE S(x) AND T(x) AND U(x) AND V(x);"
    )


def nested_sgf_text() -> str:
    return """
    Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);
    Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(y);
    Z3 := SELECT (x, y) FROM R(x, y) WHERE U(x) AND NOT Z2(x, y);
    """


def nested_sgf():
    return parse_sgf(nested_sgf_text(), name="nested")


def as_set(relation) -> frozenset:
    """Tuples of a relation as a frozenset for comparisons."""
    return frozenset(relation.tuples())
