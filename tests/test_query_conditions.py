"""Unit tests for repro.query.conditions."""

from repro.model.atoms import Atom
from repro.query.conditions import (
    TRUE,
    And,
    AtomCondition,
    Not,
    Or,
    atom,
    conjunction,
    disjunction,
    evaluate_with_index,
    truth_assignment,
)

S_X = atom("S", "x")
T_Y = atom("T", "y")
U_Z = atom("U", "z")


class TestAtoms:
    def test_atoms_in_left_to_right_order(self):
        cond = Or(And(T_Y, S_X), U_Z)
        assert cond.atoms() == (T_Y.atom, S_X.atom, U_Z.atom)

    def test_duplicate_atoms_reported_once(self):
        cond = And(S_X, Or(S_X, T_Y))
        assert cond.atoms() == (S_X.atom, T_Y.atom)

    def test_true_condition_has_no_atoms(self):
        assert TRUE.atoms() == ()

    def test_variables(self):
        cond = And(S_X, T_Y)
        names = {v.name for v in cond.variables()}
        assert names == {"x", "y"}


class TestEvaluation:
    def test_atom_condition(self):
        assign = truth_assignment([S_X.atom])
        assert S_X.evaluate(assign)
        assert not T_Y.evaluate(assign)

    def test_boolean_connectives(self):
        assign = truth_assignment([S_X.atom])
        assert Or(S_X, T_Y).evaluate(assign)
        assert not And(S_X, T_Y).evaluate(assign)
        assert Not(T_Y).evaluate(assign)
        assert not Not(S_X).evaluate(assign)

    def test_true_condition(self):
        assert TRUE.evaluate(lambda a: False)

    def test_nested_formula(self):
        # (S AND NOT T) OR (NOT S AND T): exclusive or.
        xor = Or(And(S_X, Not(T_Y)), And(Not(S_X), T_Y))
        assert xor.evaluate(truth_assignment([S_X.atom]))
        assert xor.evaluate(truth_assignment([T_Y.atom]))
        assert not xor.evaluate(truth_assignment([S_X.atom, T_Y.atom]))
        assert not xor.evaluate(truth_assignment([]))

    def test_evaluate_with_index(self):
        cond = And(S_X, Not(T_Y))
        ordered = cond.atoms()
        assert evaluate_with_index(cond, [0], ordered)
        assert not evaluate_with_index(cond, [0, 1], ordered)


class TestStructure:
    def test_operator_sugar(self):
        cond = (S_X & T_Y) | ~U_Z
        assert isinstance(cond, Or)
        assert isinstance(cond.left, And)
        assert isinstance(cond.right, Not)

    def test_walk_visits_all_nodes(self):
        cond = Or(And(S_X, Not(T_Y)), U_Z)
        kinds = [type(node).__name__ for node in cond.walk()]
        assert kinds.count("AtomCondition") == 3
        assert "Or" in kinds and "And" in kinds and "Not" in kinds

    def test_negation_and_disjunction_detection(self):
        assert Not(S_X).uses_negation()
        assert not And(S_X, T_Y).uses_negation()
        assert Or(S_X, T_Y).uses_disjunction()
        assert not And(S_X, T_Y).uses_disjunction()
        assert And(S_X, T_Y).is_pure_conjunction()
        assert not Or(S_X, T_Y).is_pure_conjunction()

    def test_map_atoms_substitution(self):
        cond = And(S_X, Not(T_Y))
        replaced = cond.map_atoms(
            lambda a: AtomCondition(Atom("X_" + a.relation, a.terms))
        )
        names = {a.relation for a in replaced.atoms()}
        assert names == {"X_S", "X_T"}

    def test_map_atoms_preserves_true(self):
        assert TRUE.map_atoms(lambda a: S_X) is TRUE

    def test_conditions_hashable(self):
        assert And(S_X, T_Y) == And(S_X, T_Y)
        assert len({And(S_X, T_Y), And(S_X, T_Y)}) == 1


class TestRendering:
    def test_str_atom(self):
        assert str(S_X) == "S(x)"

    def test_str_nested_parenthesises(self):
        cond = Or(And(S_X, T_Y), Not(U_Z))
        assert str(cond) == "(S(x) AND T(y)) OR NOT U(z)"

    def test_str_true(self):
        assert str(TRUE) == "TRUE"


class TestCombinators:
    def test_conjunction_empty_is_true(self):
        assert conjunction([]) is TRUE

    def test_conjunction_single(self):
        assert conjunction([S_X]) is S_X

    def test_conjunction_left_deep(self):
        cond = conjunction([S_X, T_Y, U_Z])
        assert isinstance(cond, And)
        assert cond.right is U_Z

    def test_disjunction(self):
        cond = disjunction([S_X, T_Y])
        assert isinstance(cond, Or)

    def test_disjunction_empty_is_true(self):
        assert disjunction([]) is TRUE
