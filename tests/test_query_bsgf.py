"""Unit tests for repro.query.bsgf: validation, semi-join specs, formulas."""

import pytest

from repro.model.atoms import Atom
from repro.model.terms import Variable
from repro.query.bsgf import BSGFQuery, GuardednessError, SemiJoinSpec, select
from repro.query.conditions import TRUE, And, AtomCondition, Not, atom

X, Y, Z, W = Variable("x"), Variable("y"), Variable("z"), Variable("w")


def make_query(condition=TRUE, projection=(X, Y)):
    return BSGFQuery("Z", projection, Atom.of("R", "x", "y"), condition)


class TestValidation:
    def test_valid_query(self):
        query = make_query(And(atom("S", "x"), atom("T", "y")))
        assert query.output == "Z"

    def test_projection_must_be_guarded(self):
        with pytest.raises(GuardednessError):
            BSGFQuery("Z", (Z,), Atom.of("R", "x", "y"), TRUE)

    def test_conditional_atoms_may_not_share_unguarded_variables(self):
        # S(x, u) and T(y, u) share u, which is not in the guard R(x, y).
        condition = And(atom("S", "x", "u"), atom("T", "y", "u"))
        with pytest.raises(GuardednessError):
            make_query(condition)

    def test_conditional_atoms_may_share_guarded_variables(self):
        condition = And(atom("S", "x"), atom("T", "x"))
        query = make_query(condition)
        assert len(query.conditional_atoms) == 2

    def test_single_atom_may_use_private_variables(self):
        # T(x, z): z does not occur in the guard but no other atom uses it.
        query = make_query(AtomCondition(Atom.of("T", "x", "z")))
        assert query.conditional_atoms[0].relation == "T"

    def test_example_query_from_introduction(self):
        # SELECT (x, y) FROM R(x, y) WHERE (S(x, y) OR S(y, x)) AND T(x, z)
        condition = And(
            AtomCondition(Atom.of("S", "x", "y")) | AtomCondition(
                Atom.of("S", "y", "x")
            ),
            AtomCondition(Atom.of("T", "x", "z")),
        )
        query = make_query(condition)
        assert len(query.conditional_atoms) == 3


class TestDerivedStructure:
    def test_conditional_atoms_order(self):
        condition = And(atom("T", "y"), atom("S", "x"))
        query = make_query(condition)
        assert [a.relation for a in query.conditional_atoms] == ["T", "S"]

    def test_relation_names(self):
        query = make_query(And(atom("S", "x"), atom("T", "y")))
        assert query.relation_names == frozenset({"R", "S", "T"})
        assert query.conditional_relation_names == frozenset({"S", "T"})

    def test_has_condition(self):
        assert not make_query().has_condition
        assert make_query(atom("S", "x")).has_condition

    def test_semijoin_specs_naming_and_projection(self):
        query = make_query(And(atom("S", "x"), atom("T", "y")))
        specs = query.semijoin_specs()
        assert [s.output for s in specs] == ["Z#0", "Z#1"]
        assert all(s.projection == (X, Y) for s in specs)
        assert specs[0].join_key == (X,)
        assert specs[1].join_key == (Y,)

    def test_semijoin_specs_custom_prefix(self):
        query = make_query(atom("S", "x"))
        assert query.semijoin_specs(prefix="Q")[0].output == "Q#0"

    def test_formula_over_replaces_atoms(self):
        query = make_query(And(atom("S", "x"), Not(atom("T", "y"))))
        formula = query.formula_over(["X0", "X1"])
        names = [a.relation for a in formula.atoms()]
        assert names == ["X0", "X1"]

    def test_formula_over_wrong_length(self):
        query = make_query(atom("S", "x"))
        with pytest.raises(ValueError):
            query.formula_over(["X0", "X1"])

    def test_shares_join_key(self):
        same_key = make_query(And(atom("S", "x"), atom("T", "x")))
        different_key = make_query(And(atom("S", "x"), atom("T", "y")))
        no_condition = make_query()
        assert same_key.shares_join_key()
        assert not different_key.shares_join_key()
        assert no_condition.shares_join_key()

    def test_rename_output(self):
        query = make_query(atom("S", "x"))
        assert query.rename_output("W").output == "W"

    def test_str_rendering(self):
        query = make_query(atom("S", "x"))
        text = str(query)
        assert text.startswith("Z := SELECT (x, y) FROM R(x, y) WHERE S(x)")


class TestSemiJoinSpec:
    def test_join_key_uses_guard_variable_order(self):
        spec = SemiJoinSpec(
            output="X",
            guard=Atom.of("R", "x", "y", "z"),
            conditional=Atom.of("S", "z", "x"),
            projection=(X,),
        )
        assert spec.join_key == (X, Z)

    def test_disjoint_join_key_is_empty(self):
        spec = SemiJoinSpec(
            output="X",
            guard=Atom.of("R", "x"),
            conditional=Atom.of("S", "q"),
            projection=(X,),
        )
        assert spec.join_key == ()

    def test_str(self):
        spec = SemiJoinSpec("X", Atom.of("R", "x"), Atom.of("S", "x"), (X,))
        assert "X :=" in str(spec)


class TestSelectHelper:
    def test_select_accepts_strings(self):
        query = select("Z", ["x", "y"], Atom.of("R", "x", "y"))
        assert query.projection == (X, Y)

    def test_select_accepts_variables(self):
        query = select("Z", [X], Atom.of("R", "x", "y"))
        assert query.projection == (X,)
