"""Unit tests for cost constants (Table 5), Hadoop settings (Table 4) and cost models."""

import pytest

from repro.cost.constants import CostConstants, HadoopSettings
from repro.cost.formulas import MapPartition
from repro.cost.models import (
    GumboCostModel,
    JobProfile,
    WangCostModel,
    make_cost_model,
)


class TestCostConstants:
    def test_paper_values_match_table5(self):
        c = CostConstants.paper_values()
        assert c.local_read == 0.03
        assert c.local_write == 0.085
        assert c.hdfs_read == 0.15
        assert c.hdfs_write == 0.25
        assert c.transfer == 0.017
        assert c.merge_factor == 10
        assert c.map_buffer_mb == 409.0
        assert c.reduce_buffer_mb == 512.0

    def test_scaled(self):
        c = CostConstants.paper_values().scaled(2.0)
        assert c.hdfs_read == pytest.approx(0.30)
        assert c.merge_factor == 10

    def test_reduction_values(self):
        c = CostConstants.reduction_values()
        assert c.hdfs_read == 1.0
        assert c.local_read == c.local_write == c.hdfs_write == c.transfer == 0.0
        assert c.job_overhead == 0.0

    def test_immutable(self):
        c = CostConstants.paper_values()
        with pytest.raises(AttributeError):
            c.hdfs_read = 1.0  # type: ignore[misc]


class TestHadoopSettings:
    def test_paper_values_match_table4(self):
        s = HadoopSettings.paper_values()
        assert s.map_memory_mb == 1280
        assert s.reduce_memory_mb == 1280
        assert s.io_sort_mb == 512
        assert s.node_memory_mb == 49152
        assert s.node_vcores == 10
        assert s.speculative_execution is False

    def test_containers_per_node_limited_by_vcores(self):
        s = HadoopSettings.paper_values()
        # memory would allow 49152/4096 = 12 containers; vcores cap at 10.
        assert s.containers_per_node == 10

    def test_containers_per_node_limited_by_memory(self):
        s = HadoopSettings(node_memory_mb=8192, min_allocation_mb=4096, node_vcores=10)
        assert s.containers_per_node == 2


def _profile():
    fanning = MapPartition(input_mb=500, intermediate_mb=4000, records=1000, mappers=4)
    filtered = MapPartition(input_mb=4000, intermediate_mb=1, records=10, mappers=32)
    return JobProfile([fanning, filtered], output_mb=100, reducers=4, label="test")


class TestCostModels:
    def test_factory(self):
        assert isinstance(make_cost_model("gumbo"), GumboCostModel)
        assert isinstance(make_cost_model("WANG"), WangCostModel)
        with pytest.raises(ValueError):
            make_cost_model("unknown")

    def test_breakdown_total_is_sum_of_phases(self):
        model = GumboCostModel()
        breakdown = model.job_breakdown(_profile())
        assert breakdown.total == pytest.approx(
            breakdown.overhead + breakdown.map + breakdown.reduce
        )

    def test_gumbo_exceeds_wang_on_asymmetric_profile(self):
        profile = _profile()
        assert GumboCostModel().job_cost(profile) > WangCostModel().job_cost(profile)

    def test_models_agree_on_single_partition(self):
        profile = JobProfile(
            [MapPartition(input_mb=100, intermediate_mb=120, records=10, mappers=1)],
            output_mb=10,
            reducers=1,
        )
        assert GumboCostModel().job_cost(profile) == pytest.approx(
            WangCostModel().job_cost(profile)
        )

    def test_program_cost_sums_jobs(self):
        model = GumboCostModel()
        profile = _profile()
        assert model.program_cost([profile, profile]) == pytest.approx(
            2 * model.job_cost(profile)
        )

    def test_default_reducers(self):
        model = GumboCostModel()
        assert model.default_reducers(0) == 1
        assert model.default_reducers(256) == 1
        assert model.default_reducers(257) == 2

    def test_default_mappers(self):
        model = GumboCostModel()
        assert model.default_mappers(0) == 1
        assert model.default_mappers(128) == 1
        assert model.default_mappers(129) == 2

    def test_profile_totals(self):
        profile = _profile()
        assert profile.input_mb == pytest.approx(4500)
        assert profile.intermediate_mb == pytest.approx(4001)
