"""Miscellaneous robustness tests: determinism, strategy resolution, reporting edges."""

import pytest

from repro.core.gumbo import Gumbo
from repro.experiments.costmodel import ranking_accuracy
from repro.experiments.report import format_table, relative_table
from repro.experiments.runner import RunRecord
from repro.mapreduce.engine import MapReduceEngine
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf
from repro.workloads.queries import bsgf_query_set, database_for
from repro.workloads.scaling import ScaledEnvironment

from helpers import as_set, simple_query, small_database, star_database, star_query


class TestDeterminism:
    def test_engine_metrics_are_deterministic(self):
        """Two runs of the same program yield byte-for-byte identical metrics."""
        queries = bsgf_query_set("A1")
        db = database_for(queries, guard_tuples=120, selectivity=0.5, seed=31)
        gumbo = Gumbo()
        first = gumbo.execute(queries, db, "greedy")
        second = gumbo.execute(queries, db, "greedy")
        assert first.metrics.net_time == second.metrics.net_time
        assert first.metrics.total_time == second.metrics.total_time
        assert first.metrics.communication_mb == second.metrics.communication_mb
        assert as_set(first.output("A1")) == as_set(second.output("A1"))

    def test_workload_generation_is_seeded(self):
        queries = bsgf_query_set("A3")
        a = database_for(queries, guard_tuples=100, seed=5)
        b = database_for(queries, guard_tuples=100, seed=5)
        assert a["R"].tuples() == b["R"].tuples()
        assert a["S"].tuples() == b["S"].tuples()

    def test_plans_are_deterministic(self):
        db = star_database()
        gumbo = Gumbo()
        first = gumbo.plan(star_query(), db, "greedy")
        second = gumbo.plan(star_query(), db, "greedy")
        assert sorted(j.job_id for j in first.jobs) == sorted(
            j.job_id for j in second.jobs
        )
        assert first.rounds() == second.rounds()


class TestStrategyResolution:
    def test_sgf_strategy_on_basic_query(self):
        """SGF-level strategies also accept single (basic) queries."""
        db = small_database()
        query = simple_query()
        result = Gumbo().execute(query, db, "greedy-sgf")
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db))
        assert result.strategy == "greedy-sgf"

    def test_parunit_on_basic_query(self):
        db = small_database()
        query = simple_query()
        result = Gumbo().execute(query, db, "parunit")
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db))

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            Gumbo().execute(simple_query(), small_database(), "quantum")


class TestRankingAccuracyExperiment:
    def test_ranking_accuracy_returns_fraction(self):
        env = ScaledEnvironment(scale=5e-7)
        accuracy, candidates = ranking_accuracy(
            env, query_ids=("A1",), max_group_size=1
        )
        assert set(accuracy) == {"gumbo", "wang"}
        assert candidates == 4
        for value in accuracy.values():
            assert 0.0 <= value <= 1.0


class TestReportingEdges:
    def test_relative_table_skips_queries_without_baseline(self):
        records = [RunRecord("Q", "PAR", 1.0, 1.0, 1.0, 1.0, 1, 1)]
        text = relative_table(records, "seq")
        assert "(no data)" in text

    def test_format_table_handles_heterogeneous_rows(self):
        text = format_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_run_record_extra_fields_in_dict(self):
        record = RunRecord("Q", "SEQ", 1.0, 2.0, 3.0, 4.0, 1, 1, extra={"nodes": 5.0})
        assert record.as_dict()["nodes"] == 5.0


class TestQueryEdgeCases:
    def test_constant_only_conditional(self):
        """A conditional atom with only constants acts as an existence test."""
        from repro.model.database import Database

        db = Database.from_dict({"R": [(1,), (2,)], "Flag": [("on",)]})
        query = parse_bsgf('Z := SELECT x FROM R(x) WHERE Flag("on");')
        result = Gumbo().execute(query, db, "par")
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db)) == {
            (1,), (2,)
        }

        db_without = Database.from_dict({"R": [(1,), (2,)], "Flag": [("off",)]})
        result_without = Gumbo().execute(query, db_without, "par")
        assert as_set(result_without.output()) == frozenset()

    def test_numeric_constants_in_guard_and_condition(self):
        from repro.model.database import Database

        db = Database.from_dict({"R": [(1, 2.5), (1, 3.0)], "S": [(2.5,)]})
        query = parse_bsgf("Z := SELECT y FROM R(1, y) WHERE S(y);")
        result = Gumbo().execute(query, db, "greedy")
        assert as_set(result.output()) == {(2.5,)}

    def test_identifiers_with_digits_and_underscores(self):
        from repro.model.database import Database

        db = Database.from_dict({"Rel_1": [(1, 1)], "S2": [(1,)]})
        query = parse_bsgf(
            "Out_1 := SELECT (col_a, col_b) FROM Rel_1(col_a, col_b) "
            "WHERE S2(col_a);"
        )
        result = Gumbo().execute(query, db, "seq")
        assert as_set(result.output("Out_1")) == {(1, 1)}

    def test_empty_guard_relation(self):
        from repro.model.database import Database

        db = Database.from_dict({"S": [(1,)]})
        db.ensure_relation("R", 2)
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        for strategy in ("seq", "par", "greedy"):
            result = Gumbo().execute(query, db, strategy)
            assert len(result.output()) == 0

    def test_engine_handles_large_key_groups(self):
        """Many tuples sharing one key exercise a single big reduce group."""
        from repro.model.database import Database

        rows = [(1, i) for i in range(500)]
        db = Database.from_dict({"R": rows, "S": [(1,)]})
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        result = MapReduceEngine().run_program(Gumbo().plan(query, db, "1-round"), db)
        assert len(result.outputs["Z"]) == 500
