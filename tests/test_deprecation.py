"""The legacy client entry points emit real ``DeprecationWarning``s.

PR 9 deprecated direct ``Gumbo`` / ``QueryService`` construction in
docstrings only; the warning is a first-class :class:`DeprecationWarning`
now — visible to ``-W error::DeprecationWarning`` and test runners — while
the library's *internal* construction (every ``repro.connect()`` builds
both) stays silent.
"""

from __future__ import annotations

import warnings

import pytest

import repro
from repro.core.gumbo import Gumbo
from repro.model.database import Database
from repro.service.service import QueryService


def test_gumbo_warns():
    with pytest.warns(DeprecationWarning, match="Gumbo is deprecated") as caught:
        gumbo = Gumbo()
    gumbo.close()
    assert "repro.connect()" in str(caught[0].message)


def test_query_service_warns():
    database = Database.from_dict({"R": [(1, 2)]})
    with pytest.warns(DeprecationWarning, match="QueryService is deprecated"):
        service = QueryService(database)
    service.close()


def test_connect_does_not_warn():
    """The blessed entry point builds Gumbo and QueryService internally —
    those internal constructions must not trip the client-facing warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with repro.connect({"R": [(1, 2)], "S": [(1,)]}) as conn:
            result = conn.execute("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
            assert result.tuples() == {(1, 2)}


def test_warning_points_at_the_caller():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", DeprecationWarning)
        gumbo = Gumbo()
    gumbo.close()
    deprecations = [w for w in caught if w.category is DeprecationWarning]
    assert len(deprecations) == 1
    assert deprecations[0].filename == __file__
