"""Unit tests for GumboOptions and the metrics containers."""

import pytest

from repro.core.options import GumboOptions
from repro.cost.models import JobCostBreakdown
from repro.mapreduce.counters import JobMetrics, PartitionMetrics, ProgramMetrics


class TestGumboOptions:
    def test_defaults_all_enabled(self):
        options = GumboOptions()
        assert options.message_packing
        assert options.tuple_reference
        assert options.reducers_by_intermediate
        assert options.fuse_one_round

    def test_all_disabled(self):
        options = GumboOptions.all_disabled()
        assert not options.message_packing
        assert not options.tuple_reference
        assert not options.reducers_by_intermediate
        assert not options.fuse_one_round

    def test_without_overrides_single_flag(self):
        options = GumboOptions().without(message_packing=False)
        assert not options.message_packing
        assert options.tuple_reference

    def test_without_returns_new_object(self):
        base = GumboOptions()
        assert base.without(tuple_reference=False) is not base
        assert base.tuple_reference

    def test_immutable(self):
        with pytest.raises(AttributeError):
            GumboOptions().message_packing = False  # type: ignore[misc]


def _metrics(job_id="job", input_mb=10.0, intermediate_mb=5.0, output_mb=2.0):
    metrics = JobMetrics(job_id=job_id)
    metrics.partitions.append(
        PartitionMetrics(
            relation="R",
            input_mb=input_mb,
            input_records=100,
            intermediate_mb=intermediate_mb,
            output_records=50,
            mappers=2,
        )
    )
    metrics.reducers = 3
    metrics.output_mb = output_mb
    metrics.output_records = 10
    metrics.breakdown = JobCostBreakdown(overhead=15.0, map=30.0, reduce=5.0)
    metrics.map_task_durations = [15.0, 15.0]
    metrics.reduce_task_durations = [2.0, 2.0, 1.0]
    return metrics


class TestJobMetrics:
    def test_derived_quantities(self):
        metrics = _metrics()
        assert metrics.input_mb == 10.0
        assert metrics.input_records == 100
        assert metrics.intermediate_mb == 5.0
        assert metrics.intermediate_records == 50
        assert metrics.mappers == 2
        assert metrics.total_time == 50.0

    def test_total_time_without_breakdown(self):
        metrics = JobMetrics(job_id="empty")
        assert metrics.total_time == 0.0

    def test_as_map_partition(self):
        partition = _metrics().partitions[0].as_map_partition()
        assert partition.input_mb == 10.0
        assert partition.records == 50
        assert partition.mappers == 2
        assert partition.label == "R"


class TestProgramMetrics:
    def test_aggregation(self):
        program = ProgramMetrics()
        program.add_job(_metrics("a"))
        program.add_job(_metrics("b", input_mb=20.0, intermediate_mb=1.0))
        program.net_time = 70.0
        program.rounds = 2
        assert program.num_jobs == 2
        assert program.total_time == 100.0
        assert program.input_mb == 30.0
        assert program.communication_mb == 6.0
        assert program.output_mb == 4.0
        assert program.input_gb == pytest.approx(30.0 / 1024)

    def test_summary_keys(self):
        program = ProgramMetrics()
        program.add_job(_metrics())
        assert set(program.summary()) == {
            "net_time_s",
            "total_time_s",
            "input_gb",
            "communication_gb",
        }

    def test_merge_is_sequential_composition(self):
        first = ProgramMetrics()
        first.add_job(_metrics("a"))
        first.net_time = 50.0
        first.rounds = 1
        first.level_net_times = [50.0]
        second = ProgramMetrics()
        second.add_job(_metrics("b"))
        second.net_time = 30.0
        second.rounds = 2
        second.level_net_times = [20.0, 10.0]
        merged = first.merge(second)
        assert merged.num_jobs == 2
        assert merged.net_time == 80.0
        assert merged.rounds == 3
        assert merged.level_net_times == [50.0, 20.0, 10.0]
        # Merging does not mutate the inputs.
        assert first.num_jobs == 1 and second.num_jobs == 1

    def test_str(self):
        program = ProgramMetrics()
        program.add_job(_metrics())
        assert "jobs=1" in str(program)
