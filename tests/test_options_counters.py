"""Unit tests for GumboOptions and the metrics containers."""

import pytest

from repro.core.options import GumboOptions
from repro.cost.models import JobCostBreakdown
from repro.mapreduce.counters import (
    JobMetrics,
    PartitionMetrics,
    ProgramMetrics,
    WallClockMetrics,
)


class TestGumboOptions:
    def test_defaults_all_enabled(self):
        options = GumboOptions()
        assert options.message_packing
        assert options.tuple_reference
        assert options.reducers_by_intermediate
        assert options.fuse_one_round

    def test_all_disabled(self):
        options = GumboOptions.all_disabled()
        assert not options.message_packing
        assert not options.tuple_reference
        assert not options.reducers_by_intermediate
        assert not options.fuse_one_round

    def test_without_overrides_single_flag(self):
        options = GumboOptions().without(message_packing=False)
        assert not options.message_packing
        assert options.tuple_reference

    def test_without_returns_new_object(self):
        base = GumboOptions()
        assert base.without(tuple_reference=False) is not base
        assert base.tuple_reference

    def test_immutable(self):
        with pytest.raises(AttributeError):
            GumboOptions().message_packing = False  # type: ignore[misc]


def _metrics(job_id="job", input_mb=10.0, intermediate_mb=5.0, output_mb=2.0):
    metrics = JobMetrics(job_id=job_id)
    metrics.partitions.append(
        PartitionMetrics(
            relation="R",
            input_mb=input_mb,
            input_records=100,
            intermediate_mb=intermediate_mb,
            output_records=50,
            mappers=2,
        )
    )
    metrics.reducers = 3
    metrics.output_mb = output_mb
    metrics.output_records = 10
    metrics.breakdown = JobCostBreakdown(overhead=15.0, map=30.0, reduce=5.0)
    metrics.map_task_durations = [15.0, 15.0]
    metrics.reduce_task_durations = [2.0, 2.0, 1.0]
    return metrics


class TestJobMetrics:
    def test_derived_quantities(self):
        metrics = _metrics()
        assert metrics.input_mb == 10.0
        assert metrics.input_records == 100
        assert metrics.intermediate_mb == 5.0
        assert metrics.intermediate_records == 50
        assert metrics.mappers == 2
        assert metrics.total_time == 50.0

    def test_total_time_without_breakdown(self):
        metrics = JobMetrics(job_id="empty")
        assert metrics.total_time == 0.0

    def test_as_map_partition(self):
        partition = _metrics().partitions[0].as_map_partition()
        assert partition.input_mb == 10.0
        assert partition.records == 50
        assert partition.mappers == 2
        assert partition.label == "R"


class TestProgramMetrics:
    def test_aggregation(self):
        program = ProgramMetrics()
        program.add_job(_metrics("a"))
        program.add_job(_metrics("b", input_mb=20.0, intermediate_mb=1.0))
        program.net_time = 70.0
        program.rounds = 2
        assert program.num_jobs == 2
        assert program.total_time == 100.0
        assert program.input_mb == 30.0
        assert program.communication_mb == 6.0
        assert program.output_mb == 4.0
        assert program.input_gb == pytest.approx(30.0 / 1024)

    def test_summary_keys(self):
        program = ProgramMetrics()
        program.add_job(_metrics())
        assert set(program.summary()) == {
            "net_time_s",
            "total_time_s",
            "input_gb",
            "communication_gb",
        }

    def test_merge_is_sequential_composition(self):
        first = ProgramMetrics()
        first.add_job(_metrics("a"))
        first.net_time = 50.0
        first.rounds = 1
        first.level_net_times = [50.0]
        second = ProgramMetrics()
        second.add_job(_metrics("b"))
        second.net_time = 30.0
        second.rounds = 2
        second.level_net_times = [20.0, 10.0]
        merged = first.merge(second)
        assert merged.num_jobs == 2
        assert merged.net_time == 80.0
        assert merged.rounds == 3
        assert merged.level_net_times == [50.0, 20.0, 10.0]
        # Merging does not mutate the inputs.
        assert first.num_jobs == 1 and second.num_jobs == 1

    def test_str(self):
        program = ProgramMetrics()
        program.add_job(_metrics())
        assert "jobs=1" in str(program)

    def test_merge_of_empty_metrics_is_empty(self):
        merged = ProgramMetrics().merge(ProgramMetrics())
        assert merged.num_jobs == 0
        assert merged.net_time == 0.0
        assert merged.rounds == 0
        assert merged.level_net_times == []
        assert merged.wall_elapsed_s == 0.0
        assert merged.summary() == {
            "net_time_s": 0.0,
            "total_time_s": 0.0,
            "input_gb": 0.0,
            "communication_gb": 0.0,
        }

    def test_merge_with_empty_is_identity_on_jobs(self):
        first = ProgramMetrics(backend="parallel")
        first.add_job(_metrics("a"))
        first.wall_elapsed_s = 1.5
        merged = first.merge(ProgramMetrics())
        assert merged.num_jobs == 1
        assert merged.backend == "parallel"
        assert merged.wall_elapsed_s == 1.5
        # Empty-first merge takes the non-empty side's backend instead.
        merged_other_way = ProgramMetrics(backend="serial").merge(first)
        assert merged_other_way.backend == "parallel"

    def test_merge_preserves_wall_metrics_and_waves(self):
        first = ProgramMetrics(backend="parallel")
        job_a = _metrics("a")
        job_a.wall = WallClockMetrics(backend="parallel", workers=2)
        job_a.wall.record_wave("map", tasks=4, elapsed_s=0.5)
        job_a.wall.record_wave("reduce", tasks=2, elapsed_s=0.25)
        first.add_job(job_a)
        first.wall_elapsed_s = 0.75
        second = ProgramMetrics(backend="parallel")
        job_b = _metrics("b")
        job_b.wall = WallClockMetrics(backend="parallel", workers=2)
        job_b.wall.record_wave("map", tasks=1, elapsed_s=0.1)
        second.add_job(job_b)
        second.wall_elapsed_s = 0.1
        merged = first.merge(second)
        assert merged.wall_elapsed_s == pytest.approx(0.85)
        summary = merged.wall_summary()
        assert summary["backend"] == "parallel"
        assert summary["wall_clock_s"] == pytest.approx(0.85)
        assert summary["wall_map_s"] == pytest.approx(0.6)
        assert summary["wall_reduce_s"] == pytest.approx(0.25)
        waves = [w for m in merged.job_metrics.values() for w in m.wall.waves]
        assert [(w.phase, w.tasks) for w in waves] == [
            ("map", 4),
            ("reduce", 2),
            ("map", 1),
        ]

    def test_wall_summary_without_wall_metrics(self):
        # Jobs run through the bare engine have wall=None; the phase subtotals
        # must skip them rather than crash.
        program = ProgramMetrics()
        program.add_job(_metrics("a"))
        summary = program.wall_summary()
        assert summary == {
            "backend": "serial",
            "wall_clock_s": 0.0,
            "wall_map_s": 0.0,
            "wall_reduce_s": 0.0,
        }

    def test_wall_summary_mixed_timed_and_untimed_jobs(self):
        program = ProgramMetrics(backend="parallel")
        timed = _metrics("timed")
        timed.wall = WallClockMetrics(backend="parallel")
        timed.wall.record_wave("map", tasks=1, elapsed_s=0.2)
        program.add_job(timed)
        program.add_job(_metrics("untimed"))
        summary = program.wall_summary()
        assert summary["wall_map_s"] == pytest.approx(0.2)
        assert summary["wall_reduce_s"] == 0.0

    def test_zero_duration_jobs_aggregate_cleanly(self):
        program = ProgramMetrics()
        empty = JobMetrics(job_id="empty")
        empty.wall = WallClockMetrics()
        program.add_job(empty)
        assert program.total_time == 0.0
        assert program.input_mb == 0.0
        assert program.communication_mb == 0.0
        assert program.wall_summary()["wall_map_s"] == 0.0

    def test_merge_duplicate_job_ids_last_wins(self):
        first = ProgramMetrics()
        first.add_job(_metrics("shared", input_mb=10.0))
        second = ProgramMetrics()
        second.add_job(_metrics("shared", input_mb=99.0))
        merged = first.merge(second)
        assert merged.num_jobs == 1
        assert merged.input_mb == 99.0
