"""Unit tests for the cost formulas of Section 3.3."""

import math

import pytest

from repro.cost.constants import CostConstants
from repro.cost.formulas import (
    MapPartition,
    job_cost,
    map_cost,
    map_cost_aggregated,
    map_cost_per_partition,
    merge_map_cost,
    merge_passes,
    merge_reduce_cost,
    reduce_cost,
)

C = CostConstants.paper_values()


class TestMergePasses:
    def test_zero_when_data_fits_in_buffer(self):
        assert merge_passes(100, 409, 10) == 0.0

    def test_zero_for_empty_data(self):
        assert merge_passes(0, 409, 10) == 0.0
        assert merge_passes(-5, 409, 10) == 0.0

    def test_log_of_spill_groups(self):
        # 1000 MB over a 409 MB buffer -> ceil = 3 spill groups -> log_10(3).
        assert merge_passes(1000, 409, 10) == pytest.approx(math.log(3, 10))

    def test_merge_factor_one_degenerates_to_group_count(self):
        assert merge_passes(1000, 409, 1) == 3.0

    def test_zero_buffer(self):
        assert merge_passes(100, 0, 10) == 0.0


class TestMapCost:
    def test_small_partition_has_no_merge_cost(self):
        partition = MapPartition(
            input_mb=100, intermediate_mb=100, records=10, mappers=1
        )
        expected = C.hdfs_read * 100 + C.local_write * 100
        assert map_cost(partition, C) == pytest.approx(expected)

    def test_metadata_is_16_bytes_per_record(self):
        partition = MapPartition(
            input_mb=0, intermediate_mb=0, records=1024 * 1024, mappers=1
        )
        assert partition.metadata_mb == pytest.approx(16.0)

    def test_large_partition_pays_merge_cost(self):
        partition = MapPartition(
            input_mb=128, intermediate_mb=1000, records=0, mappers=1
        )
        base = C.hdfs_read * 128 + C.local_write * 1000
        assert map_cost(partition, C) > base

    def test_more_mappers_reduce_merge_cost(self):
        big = MapPartition(input_mb=1280, intermediate_mb=5000, records=0, mappers=1)
        split = MapPartition(input_mb=1280, intermediate_mb=5000, records=0, mappers=10)
        assert map_cost(split, C) <= map_cost(big, C)

    def test_cost_increases_with_input(self):
        small = MapPartition(input_mb=10, intermediate_mb=10)
        large = MapPartition(input_mb=100, intermediate_mb=10)
        assert map_cost(large, C) > map_cost(small, C)


class TestAggregationModes:
    def test_equal_for_single_partition(self):
        partitions = [
            MapPartition(input_mb=50, intermediate_mb=70, records=5, mappers=1)
        ]
        assert map_cost_per_partition(partitions, C) == pytest.approx(
            map_cost_aggregated(partitions, C)
        )

    def test_paper_scenario_per_partition_exceeds_aggregate(self):
        """The motivating example of Section 3.3.

        One input fans out heavily (many pairs per tuple) while the other is
        filtered; averaging them hides the first one's merge cost, so the
        aggregate (Wang) cost is lower than the per-partition (Gumbo) cost.
        """
        fanning = MapPartition(input_mb=500, intermediate_mb=4000, records=0, mappers=4)
        filtered = MapPartition(input_mb=4000, intermediate_mb=1, records=0, mappers=32)
        per_partition = map_cost_per_partition([fanning, filtered], C)
        aggregated = map_cost_aggregated([fanning, filtered], C)
        assert per_partition > aggregated

    def test_empty_partitions(self):
        assert map_cost_per_partition([], C) == 0.0
        assert map_cost_aggregated([], C) == 0.0


class TestReduceCost:
    def test_formula_components(self):
        # Small data: no reduce-side merge.
        cost = reduce_cost(100, 10, reducers=4, constants=C)
        assert cost == pytest.approx(C.transfer * 100 + C.hdfs_write * 10)

    def test_merge_cost_added_for_large_groups(self):
        big = reduce_cost(10_000, 10, reducers=1, constants=C)
        small = reduce_cost(10_000, 10, reducers=100, constants=C)
        assert big > small

    def test_merge_reduce_cost_zero_when_fits(self):
        assert merge_reduce_cost(100, 1, C) == 0.0

    def test_merge_map_cost_uses_metadata(self):
        with_meta = merge_map_cost(400, 50, 1, C)
        without_meta = merge_map_cost(400, 0, 1, C)
        assert with_meta >= without_meta


class TestJobCost:
    def test_includes_overhead(self):
        partitions = [MapPartition(input_mb=10, intermediate_mb=10)]
        cost = job_cost(partitions, output_mb=1, reducers=1, constants=C)
        assert cost >= C.job_overhead

    def test_per_partition_flag(self):
        fanning = MapPartition(input_mb=500, intermediate_mb=4000, records=0, mappers=4)
        filtered = MapPartition(input_mb=4000, intermediate_mb=1, records=0, mappers=32)
        gumbo = job_cost([fanning, filtered], 10, 4, C, per_partition=True)
        wang = job_cost([fanning, filtered], 10, 4, C, per_partition=False)
        assert gumbo > wang

    def test_reduction_constants_collapse_to_hdfs_read(self):
        constants = CostConstants.reduction_values()
        partitions = [MapPartition(input_mb=7, intermediate_mb=3, records=10)]
        cost = job_cost(partitions, output_mb=100, reducers=1, constants=constants)
        assert cost == pytest.approx(7.0)
