"""Tests for the Appendix A NP-hardness constructions."""

import pytest

from repro.core.costing import PlanCostEstimator
from repro.core.greedy_sgf import optimal_multiway_sort, sort_cost
from repro.core.hardness import (
    SPECIAL,
    SubsetCostInstance,
    build_sgf_reduction,
)
from repro.core.options import GumboOptions
from repro.core.strategies import sgf_group_cost
from repro.cost.estimates import StatisticsCatalog
from repro.cost.models import GumboCostModel
from repro.query.dependency import DependencyGraph


class TestSubsetCost:
    def test_cost_function(self):
        instance = SubsetCostInstance(items=(3, 5, 7), gamma=15)
        assert instance.cost([3, 5]) == 8
        assert instance.cost([3, SPECIAL]) == 15
        assert instance.cost([]) == 0

    def test_achievable_costs_match_theorem3(self):
        """Achievable partition costs are exactly {gamma + sum(B) : B subset of A}."""
        items = (2, 3, 7)
        instance = SubsetCostInstance(items=items, gamma=sum(items))
        expected = {instance.gamma + s for s in instance.subset_sums()}
        assert instance.achievable_costs() == expected

    def test_subset_sums(self):
        instance = SubsetCostInstance(items=(1, 2), gamma=3)
        assert instance.subset_sums() == {0, 1, 2, 3}

    def test_partition_cost(self):
        instance = SubsetCostInstance(items=(4, 6), gamma=10)
        assert instance.partition_cost([[4], [6, SPECIAL]]) == 4 + 10


class TestSGFReduction:
    @pytest.fixture(scope="class")
    def reduction(self):
        return build_sgf_reduction([2, 3])

    def _estimator(self, reduction):
        catalog = StatisticsCatalog(reduction.database, sample_size=50)
        return PlanCostEstimator(
            catalog,
            GumboCostModel(reduction.constants),
            GumboOptions(),
        )

    def test_construction_shapes(self, reduction):
        assert reduction.gamma == 5
        assert reduction.query.output_names == ("f1", "f2", "fcirc")
        assert len(reduction.database["S1"]) == 2
        assert len(reduction.database["S2"]) == 3
        assert len(reduction.database["R1"]) == 0

    def test_relation_sizes_are_item_megabytes(self, reduction):
        assert reduction.database["S1"].size_mb() == pytest.approx(2.0, rel=0.01)
        assert reduction.database["S2"].size_mb() == pytest.approx(3.0, rel=0.01)

    def test_individual_query_cost_equals_item(self, reduction):
        """cost(GOPT({f_i})) = a_i under the degenerate constants."""
        estimator = self._estimator(reduction)
        graph = DependencyGraph(reduction.query)
        for index, item in enumerate(reduction.items, start=1):
            cost = sgf_group_cost([graph.subquery(f"f{index}")], estimator)
            assert cost == pytest.approx(item, rel=0.02)

    def test_pair_cost_is_additive(self, reduction):
        estimator = self._estimator(reduction)
        graph = DependencyGraph(reduction.query)
        cost = sgf_group_cost([graph.subquery("f1"), graph.subquery("f2")], estimator)
        assert cost == pytest.approx(sum(reduction.items), rel=0.02)

    def test_grouping_with_fcirc_costs_gamma(self, reduction):
        """cost(GOPT({f_i, f°})) = gamma: the relations of f_i are already read."""
        estimator = self._estimator(reduction)
        graph = DependencyGraph(reduction.query)
        cost = sgf_group_cost(
            [graph.subquery("f1"), graph.subquery("fcirc")], estimator
        )
        assert cost == pytest.approx(reduction.gamma, rel=0.02)

    def test_achievable_sort_costs_mirror_subset_sums(self, reduction):
        """Costs of multiway sorts are gamma plus subset sums of the items."""
        estimator = self._estimator(reduction)
        graph = DependencyGraph(reduction.query)

        def group_cost(queries):
            return sgf_group_cost(queries, estimator)

        costs = set()
        for sort in graph.all_multiway_sorts(max_nodes=4):
            costs.add(round(sort_cost(graph, [list(g) for g in sort], group_cost), 2))
        instance = SubsetCostInstance(reduction.items, reduction.gamma)
        expected = {float(reduction.gamma + s) for s in instance.subset_sums()}
        assert costs == expected

    def test_optimal_sort_cost_is_gamma(self, reduction):
        """The cheapest sort groups every f_i with f°, costing exactly gamma."""
        estimator = self._estimator(reduction)
        graph = DependencyGraph(reduction.query)
        _, best = optimal_multiway_sort(
            graph, lambda queries: sgf_group_cost(queries, estimator), max_nodes=4
        )
        assert best == pytest.approx(reduction.gamma, rel=0.02)

    def test_invalid_items_rejected(self):
        with pytest.raises(ValueError):
            build_sgf_reduction([])
        with pytest.raises(ValueError):
            build_sgf_reduction([0, 3])
