"""Unit tests for the EVAL job and the fused 1-ROUND job."""

import pytest

from repro.core.eval_job import EvalJob, EvalTarget
from repro.core.fused import (
    FusedOneRoundJob,
    OneRoundNotApplicableError,
    one_round_applicable,
)
from repro.core.options import GumboOptions
from repro.core.plan import build_two_round_program
from repro.mapreduce.engine import MapReduceEngine
from repro.model.database import Database
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf

from helpers import (
    as_set,
    disjunctive_query,
    shared_key_query,
    simple_query,
    small_database,
    star_database,
    star_query,
)


@pytest.fixture
def engine():
    return MapReduceEngine()


class TestEvalTarget:
    def test_requires_one_intermediate_per_atom(self):
        query = simple_query()
        with pytest.raises(ValueError):
            EvalTarget(query, ("only-one",))

    def test_properties(self):
        query = simple_query()
        target = EvalTarget(query, ("Z#0", "Z#1"))
        assert target.output == "Z"
        assert target.guard.relation == "R"


class TestEvalJobValidation:
    def test_needs_targets(self):
        with pytest.raises(ValueError):
            EvalJob("eval", [])

    def test_duplicate_outputs_rejected(self):
        query = simple_query()
        with pytest.raises(ValueError):
            EvalJob(
                "eval",
                [EvalTarget(query, ("A", "B")), EvalTarget(query, ("C", "D"))],
            )

    def test_shared_intermediate_names_rejected(self):
        q1 = simple_query()
        q2 = q1.rename_output("Z2")
        with pytest.raises(ValueError):
            EvalJob("eval", [EvalTarget(q1, ("A", "B")), EvalTarget(q2, ("A", "C"))])

    def test_input_relations(self):
        query = simple_query()
        job = EvalJob("eval", [EvalTarget(query, ("Z#0", "Z#1"))])
        assert list(job.input_relations()) == ["R", "Z#0", "Z#1"]
        assert job.output_schema() == {"Z": 2}


class TestTwoRoundCorrectness:
    """MSJ + EVAL programs must agree with the reference evaluator."""

    @pytest.mark.parametrize(
        "query_factory, db_factory",
        [
            (simple_query, small_database),
            (disjunctive_query, small_database),
            (star_query, star_database),
            (shared_key_query, star_database),
        ],
    )
    def test_matches_reference(self, engine, query_factory, db_factory):
        query = query_factory()
        db = db_factory()
        specs = query.semijoin_specs()
        program = build_two_round_program([query], [[s] for s in specs])
        result = engine.run_program(program, db)
        assert as_set(result.outputs[query.output]) == as_set(evaluate_bsgf(query, db))

    def test_grouped_partition_gives_same_answer(self, engine):
        query = star_query()
        db = star_database()
        specs = query.semijoin_specs()
        grouped = build_two_round_program([query], [specs])
        singleton = build_two_round_program([query], [[s] for s in specs])
        grouped_out = engine.run_program(grouped, db).outputs[query.output]
        singleton_out = engine.run_program(singleton, db).outputs[query.output]
        assert as_set(grouped_out) == as_set(singleton_out)

    def test_negation_handled(self, engine):
        db = small_database()
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE NOT S(x);")
        program = build_two_round_program(
            [query], [[s] for s in query.semijoin_specs()]
        )
        result = engine.run_program(program, db)
        assert as_set(result.outputs["Z"]) == as_set(evaluate_bsgf(query, db))

    def test_query_without_condition(self, engine):
        db = small_database()
        query = parse_bsgf("Z := SELECT x FROM R(x, y);")
        program = build_two_round_program([query], [])
        result = engine.run_program(program, db)
        assert as_set(result.outputs["Z"]) == as_set(evaluate_bsgf(query, db))

    def test_multiple_queries_in_one_eval(self, engine):
        db = small_database()
        q1 = parse_bsgf("Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        q2 = parse_bsgf("Z2 := SELECT (x, y) FROM R(x, y) WHERE NOT T(y);")
        specs = [s for q in (q1, q2) for s in q.semijoin_specs()]
        program = build_two_round_program([q1, q2], [[s] for s in specs])
        result = engine.run_program(program, db)
        assert as_set(result.outputs["Z1"]) == as_set(evaluate_bsgf(q1, db))
        assert as_set(result.outputs["Z2"]) == as_set(evaluate_bsgf(q2, db))

    def test_per_fact_combination_is_correct(self, engine):
        """Two guard facts sharing a projection must not be conflated.

        R(1, 10) satisfies only S, R(1, 20) satisfies only T; with projection
        on x alone, (1,) must NOT be in the answer of S(x') AND T(y') style
        conditions that no single fact satisfies.
        """
        db = Database.from_dict({"R": [(1, 10), (1, 20)], "S": [(10,)], "T": [(20,)]})
        query = parse_bsgf("Z := SELECT x FROM R(x, y) WHERE S(y) AND T(y);")
        program = build_two_round_program(
            [query], [[s] for s in query.semijoin_specs()]
        )
        result = engine.run_program(program, db)
        expected = as_set(evaluate_bsgf(query, db))
        assert as_set(result.outputs["Z"]) == expected == frozenset()


class TestEvalByteAccounting:
    def test_tuple_reference_shrinks_keys(self):
        query = star_query()
        target = EvalTarget(query, tuple(s.output for s in query.semijoin_specs()))
        with_ref = EvalJob("a", [target], GumboOptions(tuple_reference=True))
        without_ref = EvalJob("b", [target], GumboOptions(tuple_reference=False))
        key = (0, 1, 2, 3, 4)
        assert with_ref.key_bytes(key) < without_ref.key_bytes(key)


class TestOneRoundApplicability:
    def test_shared_key_applicable(self):
        assert one_round_applicable(shared_key_query())

    def test_star_query_not_applicable(self):
        assert not one_round_applicable(star_query())

    def test_no_condition_applicable(self):
        assert one_round_applicable(parse_bsgf("Z := SELECT x FROM R(x, y);"))

    def test_constructor_rejects_inapplicable_query(self):
        with pytest.raises(OneRoundNotApplicableError):
            FusedOneRoundJob("fused", [star_query()])

    def test_needs_queries(self):
        with pytest.raises(ValueError):
            FusedOneRoundJob("fused", [])

    def test_duplicate_outputs_rejected(self):
        query = shared_key_query()
        with pytest.raises(ValueError):
            FusedOneRoundJob("fused", [query, query])


class TestOneRoundCorrectness:
    def test_matches_reference(self, engine):
        query = shared_key_query()
        db = star_database()
        result = engine.run_job(FusedOneRoundJob("fused", [query]), db)
        assert as_set(result.outputs[query.output]) == as_set(evaluate_bsgf(query, db))

    def test_uniqueness_style_query(self, engine):
        db = star_database()
        query = parse_bsgf(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
            "WHERE (S(x) AND NOT T(x)) OR (NOT S(x) AND T(x));"
        )
        result = engine.run_job(FusedOneRoundJob("fused", [query]), db)
        assert as_set(result.outputs["Z"]) == as_set(evaluate_bsgf(query, db))

    def test_negation_only_query(self, engine):
        db = star_database()
        query = parse_bsgf(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE NOT S(x);"
        )
        result = engine.run_job(FusedOneRoundJob("fused", [query]), db)
        assert as_set(result.outputs["Z"]) == as_set(evaluate_bsgf(query, db))

    def test_multiple_queries_in_one_fused_job(self, engine):
        db = star_database()
        q1 = parse_bsgf(
            "Z1 := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE S(x) AND T(x);"
        )
        q2 = parse_bsgf(
            "Z2 := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE U(y) OR V(y);"
        )
        result = engine.run_job(FusedOneRoundJob("fused", [q1, q2]), db)
        assert as_set(result.outputs["Z1"]) == as_set(evaluate_bsgf(q1, db))
        assert as_set(result.outputs["Z2"]) == as_set(evaluate_bsgf(q2, db))

    def test_one_round_uses_single_job(self, engine):
        query = shared_key_query()
        db = star_database()
        msj_eval = build_two_round_program(
            [query], [[s] for s in query.semijoin_specs()]
        )
        one_round = engine.run_job(FusedOneRoundJob("fused", [query]), db)
        two_round = engine.run_program(msj_eval, db)
        # Same answers, but strictly less HDFS input (single pass over data).
        assert as_set(one_round.outputs[query.output]) == as_set(
            two_round.outputs[query.output]
        )
        assert one_round.metrics.input_mb < two_round.metrics.input_mb
