"""The sharded persistent worker tier: routing math, RPC framing, serial
parity, worker supervision, the asyncio front-end and a differential fuzz
campaign.

The tier's core contract mirrors the other backends': outputs and simulated
metrics must be *bit-identical* to the serial simulator on every Section 5
workload — sharding may only change wall-clock time and which process holds
which rows.  On top of that the tier adds its own promises, each tested
here: placement is a pure function of ``stable_hash`` (so re-partitioning on
a shard-count change is exact re-evaluation), a worker killed mid-request is
respawned and its batch retried without the caller noticing, deterministic
worker errors are raised (never retried into silence), and the front-end
sheds load beyond its admission limit instead of queueing unboundedly.
"""

from __future__ import annotations

import asyncio
import os
import pickle
import signal
import socket
import struct
import time

import pytest

from repro.core.dynamic import DynamicSGFExecutor
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.exec import SimulatedBackend, make_backend, partition_index
from repro.fuzz import FuzzOptions, run_fuzz
from repro.mapreduce.engine import MapReduceEngine
from repro.model.database import Database
from repro.service.sharded import (
    RequestTimeoutError,
    ServiceOverloadedError,
    ShardCluster,
    ShardedBackend,
    ShardedService,
)
from repro.service.sharded.cluster import ShardedExecutionError
from repro.service.sharded.routing import (
    chunk_assignment,
    shard_for_bucket,
    shard_for_chunk,
)
from repro.service.sharded.rpc import (
    FrameTooLargeError,
    MapTask,
    Ok,
    Ping,
    decode_frame,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.workloads.queries import (
    bsgf_query_set,
    database_for,
    section5_workloads,
    sgf_query,
)

from test_exec_backends import _assert_metrics_match, _assert_results_match

#: Shard count used throughout; small so clusters stay cheap on CI boxes.
SHARDS = 2


@pytest.fixture(scope="module")
def serial_backend():
    return SimulatedBackend(MapReduceEngine())


@pytest.fixture(scope="module")
def sharded_backend():
    """One shared cluster for the whole module (spawn amortised over tests)."""
    backend = ShardedBackend(MapReduceEngine(), shards=SHARDS)
    yield backend
    backend.close()


# -- RPC framing ---------------------------------------------------------------------


class TestFraming:
    def test_roundtrip_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            messages = [
                Ping(),
                Ok(info={"shard": 1}),
                MapTask(task_id=3, job_blob=b"x", relation="R", chunk_index=0),
            ]
            for message in messages:
                send_frame(left, message)
            for message in messages:
                assert recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_encode_decode_are_inverse(self):
        frame = encode_frame(Ok(info=[1, "a", None]))
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert decode_frame(frame[4:]) == Ok(info=[1, "a", None])

    def test_oversized_header_is_rejected_not_allocated(self):
        """A corrupt header claiming a huge frame raises instead of allocating."""
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", (1 << 30) + 1) + b"junk")
            with pytest.raises(FrameTooLargeError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    @staticmethod
    def _message_of_exact_frame_size(target: int) -> Ok:
        """An ``Ok`` whose pickled frame payload is exactly *target* bytes."""
        overhead = len(pickle.dumps(Ok(info=b""), pickle.HIGHEST_PROTOCOL))
        # Pickle's length prefixes can shift by a few bytes at size
        # boundaries; walk the payload size until the encoding lands exactly
        # on target.
        for padding in range(max(0, target - overhead - 8), target):
            message = Ok(info=b"x" * padding)
            if len(pickle.dumps(message, pickle.HIGHEST_PROTOCOL)) == target:
                return message
        raise AssertionError(f"no payload size pickles to exactly {target} bytes")

    def test_frame_exactly_at_cap_is_legal(self, monkeypatch):
        """The 1 GiB cap is inclusive: an exactly-at-cap frame round-trips on
        both the encode and the decode side (tested with a shrunk cap)."""
        from repro.service.sharded import rpc

        monkeypatch.setattr(rpc, "MAX_FRAME_BYTES", 4096)
        message = self._message_of_exact_frame_size(4096)
        frame = rpc.encode_frame(message)
        assert len(frame) == 4 + 4096
        left, right = socket.socketpair()
        try:
            left.sendall(frame)
            assert recv_frame(right) == message
        finally:
            left.close()
            right.close()

    def test_frame_one_byte_over_cap_raises_typed_error(self, monkeypatch):
        """Cap + 1 raises FrameTooLargeError — on encode, on the worker's
        blocking decode, and on the parent's asyncio decode — never a bare
        struct/overflow error."""
        from repro.service.sharded import rpc

        monkeypatch.setattr(rpc, "MAX_FRAME_BYTES", 4096)
        over = self._message_of_exact_frame_size(4097)
        with pytest.raises(FrameTooLargeError):
            rpc.encode_frame(over)
        # A forged header claiming cap+1 bytes must be rejected before any
        # allocation, with the typed error, on both receive paths.
        forged = struct.pack(">I", 4097) + b"junk"
        left, right = socket.socketpair()
        try:
            left.sendall(forged)
            with pytest.raises(FrameTooLargeError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

        async def _async_side():
            reader = asyncio.StreamReader()
            reader.feed_data(forged)
            reader.feed_eof()
            with pytest.raises(FrameTooLargeError):
                await rpc.read_frame_async(reader)

        asyncio.run(_async_side())

    def test_header_width_covers_the_cap(self):
        """The 4-byte unsigned header can express the inclusive cap."""
        from repro.service.sharded import rpc

        assert rpc.MAX_FRAME_BYTES == 1 << 30
        assert rpc.MAX_FRAME_BYTES <= 0xFFFFFFFF
        assert struct.unpack(">I", struct.pack(">I", rpc.MAX_FRAME_BYTES))[0] == (
            rpc.MAX_FRAME_BYTES
        )

    def test_truncated_stream_raises_connection_error(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame(Ping())
            left.sendall(frame[: len(frame) - 2])
            left.close()
            with pytest.raises(ConnectionError):
                recv_frame(right)
        finally:
            right.close()


# -- routing math --------------------------------------------------------------------


class TestRouting:
    def test_placement_is_the_shared_partition_function(self):
        """Chunk and bucket placement are exactly ``partition_index`` calls —
        the same CRC-32 hash that places shuffle keys on reducers."""
        for relation in ("R", "S", "Edge_2"):
            for chunk in range(20):
                assert shard_for_chunk(relation, chunk, 5) == partition_index(
                    (relation, chunk), 5
                )
        for bucket in range(20):
            assert shard_for_bucket(bucket, 3) == partition_index(bucket, 3)

    def test_placement_in_range_and_deterministic(self):
        for shards in (1, 2, 3, 7):
            for chunk in range(50):
                shard = shard_for_chunk("R", chunk, shards)
                assert 0 <= shard < shards
                assert shard == shard_for_chunk("R", chunk, shards)

    def test_assignment_partitions_chunks_exactly(self):
        """Every chunk appears on exactly one shard; every shard has an entry."""
        for shards in (1, 2, 4):
            assignment = chunk_assignment("R", 23, shards)
            assert set(assignment) == set(range(shards))
            flat = sorted(i for chunks in assignment.values() for i in chunks)
            assert flat == list(range(23))

    def test_chunk_placement_independent_of_chunk_count(self):
        """Adding chunks never moves existing ones (placement ignores the
        total), so growing a relation extends the layout instead of
        reshuffling it."""
        small = chunk_assignment("R", 8, 3)
        large = chunk_assignment("R", 16, 3)
        for shard in range(3):
            assert large[shard][: len(small[shard])] == small[shard]

    def test_repartition_on_shard_count_change_is_pure_reevaluation(self):
        """The layout for a new shard count *is* ``chunk_assignment`` for it —
        no state, no migration log, just the pure function re-evaluated."""
        for shards in (2, 3, 5):
            assignment = chunk_assignment("R", 30, shards)
            for shard, chunks in assignment.items():
                for chunk in chunks:
                    assert shard_for_chunk("R", chunk, shards) == shard

    @pytest.mark.parametrize("shards", [2, 3])
    def test_cluster_inventory_matches_the_pure_assignment(self, shards):
        """What the live workers actually hold equals the routing math."""
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=200, selectivity=0.5, seed=3)
        with ShardedBackend(shards=shards) as backend:
            assert backend.ensure_loaded(database) == len(
                [r for r in database if len(r)]
            )
            inventory = backend.cluster.inventory()
            assert set(inventory) == set(range(shards))
            for relation in database:
                if len(relation) == 0:
                    continue
                mappers = backend.engine.mappers_for(relation.size_mb())
                chunk_count = len(relation.column_chunks(mappers))
                expected = chunk_assignment(relation.name, chunk_count, shards)
                for shard in range(shards):
                    held = inventory[shard].get(relation.name, [])
                    assert held == expected[shard], (relation.name, shard)


# -- serial parity -------------------------------------------------------------------


class TestShardedParity:
    @pytest.mark.parametrize(
        "query_id", [qid for qid, _ in section5_workloads()]
    )
    def test_section5_workloads(self, query_id, serial_backend, sharded_backend):
        """Every Section 5 workload: identical outputs, identical simulated
        metrics, through the persistent worker tier."""
        from repro.workloads.queries import workload_query

        query = workload_query(query_id)
        database = database_for(query, guard_tuples=120, selectivity=0.5, seed=5)
        serial = Gumbo(backend=serial_backend).execute(query, database)
        sharded = Gumbo(backend=sharded_backend).execute(query, database)
        _assert_results_match(serial, sharded)
        assert sharded.metrics.backend == "sharded"
        assert sharded.metrics.wall_elapsed_s > 0

    @pytest.mark.parametrize("strategy", ["seq", "par", "greedy", "1-round"])
    def test_every_bsgf_strategy(self, strategy, serial_backend, sharded_backend):
        queries = bsgf_query_set("A3")
        database = database_for(queries, guard_tuples=200, selectivity=0.5, seed=3)
        serial = Gumbo(backend=serial_backend).execute(queries, database, strategy)
        sharded = Gumbo(backend=sharded_backend).execute(queries, database, strategy)
        _assert_results_match(serial, sharded)

    def test_kernel_path_parity(self, serial_backend, sharded_backend):
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=150, selectivity=0.5, seed=9)
        options = GumboOptions(kernel_mode="on")
        serial = Gumbo(backend=serial_backend, options=options).execute(
            queries, database, "greedy"
        )
        sharded = Gumbo(backend=sharded_backend, options=options).execute(
            queries, database, "greedy"
        )
        _assert_results_match(serial, sharded)

    def test_dynamic_executor_parity(self, serial_backend, sharded_backend):
        query = sgf_query("C2")
        database = database_for(query, guard_tuples=150, selectivity=0.5, seed=11)
        serial = DynamicSGFExecutor(backend=serial_backend).execute(query, database)
        sharded = DynamicSGFExecutor(backend=sharded_backend).execute(query, database)
        assert set(serial.outputs) == set(sharded.outputs)
        for name in serial.outputs:
            assert serial.outputs[name].tuples() == sharded.outputs[name].tuples()
        _assert_metrics_match(serial.metrics, sharded.metrics)

    def test_warm_second_run_ships_nothing(self, serial_backend, sharded_backend):
        """The second run over the same database finds every relation resident
        (copy-on-write identity), ships zero relations, and still matches."""
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=150, selectivity=0.5, seed=2)
        gumbo = Gumbo(backend=sharded_backend)
        first = gumbo.execute(queries, database, "greedy")
        assert sharded_backend.ensure_loaded(database) == 0  # all warm now
        second = gumbo.execute(queries, database, "greedy")
        _assert_results_match(first, second)
        serial = Gumbo(backend=serial_backend).execute(queries, database, "greedy")
        _assert_results_match(serial, second)

    def test_make_backend_by_name(self):
        backend = make_backend("sharded", shards=SHARDS)
        try:
            assert isinstance(backend, ShardedBackend)
            assert backend.shards == SHARDS
        finally:
            backend.close()

    def test_instance_shard_conflict_rejected(self, sharded_backend):
        """An instance carries its own shard count; a mismatching shards=
        is a configuration error, while a matching one passes through."""
        with pytest.raises(ValueError):
            make_backend(sharded_backend, shards=SHARDS + 1)
        assert make_backend(sharded_backend, shards=SHARDS) is sharded_backend


# -- worker supervision --------------------------------------------------------------


class TestWorkerSupervision:
    def test_injected_crash_mid_request_is_respawned_and_retried(self):
        """A worker killed *after* its tasks are on the wire: the shard is
        respawned, its resident chunks reloaded, the batch retried once —
        and the caller sees a bit-identical result."""
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=150, selectivity=0.5, seed=4)
        serial = Gumbo().execute(queries, database, "greedy")
        with ShardedBackend(shards=SHARDS) as backend:
            gumbo = Gumbo(backend=backend)
            _assert_results_match(serial, gumbo.execute(queries, database, "greedy"))
            assert backend.cluster.respawns == 0
            backend.cluster.inject_crash(0)
            survived = gumbo.execute(queries, database, "greedy")
            _assert_results_match(serial, survived)
            assert backend.cluster.respawns == 1
            assert backend.cluster.retries == 1
            # The respawned worker reloaded shard 0's chunks: still warm.
            assert backend.ensure_loaded(database) == 0

    def test_sigkill_between_requests_is_survived(self):
        """A worker killed out-of-band (no armed injection) is detected on the
        next batch and replaced transparently."""
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=120, selectivity=0.5, seed=8)
        serial = Gumbo().execute(queries, database, "greedy")
        with ShardedBackend(shards=SHARDS) as backend:
            gumbo = Gumbo(backend=backend)
            gumbo.execute(queries, database, "greedy")
            victim = backend.cluster.worker_stats()[0]
            os.kill(victim.pid, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                try:
                    os.kill(victim.pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.01)
            result = gumbo.execute(queries, database, "greedy")
            _assert_results_match(serial, result)
            assert backend.cluster.respawns >= 1
            pids = {stats.pid for stats in backend.cluster.worker_stats()}
            assert victim.pid not in pids

    def test_worker_exception_raises_not_retries(self, sharded_backend):
        """A deterministic worker-side error is a finding, not a flake: it
        surfaces as ShardedExecutionError and is never respawn-retried."""
        cluster = sharded_backend.cluster
        respawns = cluster.respawns
        bad = MapTask(
            task_id=0,
            job_blob=pickle.dumps("not a job"),
            relation="NoSuchRelation",
            chunk_index=0,
            version=99,
        )
        with pytest.raises(ShardedExecutionError):
            cluster.run_tasks([(0, bad)])
        assert cluster.respawns == respawns
        # The worker survives: it answered with a Failure frame, not a death.
        assert cluster.ping()[0]["shard"] == 0

    def test_close_and_restart(self):
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=100, selectivity=0.5, seed=6)
        backend = ShardedBackend(shards=SHARDS)
        try:
            first = Gumbo(backend=backend).execute(queries, database, "greedy")
            backend.close()
            assert not backend.cluster.started
            second = Gumbo(backend=backend).execute(queries, database, "greedy")
            _assert_results_match(first, second)
        finally:
            backend.close()

    def test_external_cluster_is_not_owned(self):
        cluster = ShardCluster(SHARDS)
        try:
            backend = ShardedBackend(cluster=cluster)
            assert backend.shards == SHARDS
            cluster.start()
            backend.close()  # must NOT stop the externally supplied cluster
            assert cluster.started
            with pytest.raises(ValueError):
                ShardedBackend(cluster=cluster, shards=SHARDS + 1)
        finally:
            cluster.close()


# -- the asyncio front-end -----------------------------------------------------------


QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
DB = {
    "R": [(i, i + 1) for i in range(40)],
    "S": [(i,) for i in range(0, 40, 2)],
    "T": [(i,) for i in range(0, 40, 5)],
}


class TestShardedFrontend:
    def test_serves_correct_results(self):
        database = Database.from_dict(DB)
        expected = Gumbo().execute(QUERY, database).output().tuples()

        async def scenario():
            with ShardedService.create(database, shards=SHARDS) as frontend:
                results = await asyncio.gather(
                    *(frontend.execute(QUERY) for _ in range(4))
                )
                return results, frontend.stats()

        results, stats = asyncio.run(scenario())
        for served in results:
            assert served.outputs["Z"].tuples() == expected
        assert stats["requests"] == 4
        assert stats["shed"] == 0
        # Plan cache amortised: at most one planning pass for four requests.
        assert sum(1 for r in results if not r.plan_cached) == 1

    def test_overload_sheds_beyond_admission_limit(self):
        """With concurrency 1 and queue 1, the third concurrent arrival (and
        every one after it) is shed with the typed error, immediately."""
        database = Database.from_dict(DB)

        async def scenario():
            with ShardedService.create(
                database, shards=SHARDS, max_concurrency=1, max_queue=1
            ) as frontend:
                await frontend.execute(QUERY)  # warm: load shards, cache plan

                outcomes = await asyncio.gather(
                    *(frontend.execute(QUERY) for _ in range(5)),
                    return_exceptions=True,
                )
                return outcomes, frontend.stats(), frontend.admission_limit

        outcomes, stats, limit = asyncio.run(scenario())
        assert limit == 2
        shed = [o for o in outcomes if isinstance(o, ServiceOverloadedError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert len(shed) == 3
        assert len(served) == 2
        assert all(error.limit == 2 for error in shed)
        assert stats["shed"] == 3
        assert stats["queue_depth"] == 0  # drained

    def test_request_timeout_raises_typed_error(self):
        database = Database.from_dict(DB)

        async def scenario():
            with ShardedService.create(
                database, shards=SHARDS, request_timeout_s=1e-6
            ) as frontend:
                with pytest.raises(RequestTimeoutError) as excinfo:
                    await frontend.execute(QUERY)
                return excinfo.value, frontend.stats()

        error, stats = asyncio.run(scenario())
        assert error.timeout_s == 1e-6
        assert stats["timeouts"] == 1

    def test_materialize_then_serve_from_cache(self):
        database = Database.from_dict(DB)

        async def scenario():
            with ShardedService.create(database, shards=SHARDS) as frontend:
                await frontend.materialize(QUERY)
                served = await frontend.execute(QUERY)
                return served

        served = asyncio.run(scenario())
        assert served.plan_cached
        assert served.outputs["Z"].tuples() == Gumbo().execute(
            QUERY, Database.from_dict(DB)
        ).output().tuples()


# -- differential fuzzing ------------------------------------------------------------


class TestShardedFuzzCampaign:
    def test_fifty_case_campaign_zero_divergences(self):
        """50 random programs, every applicable strategy, serial vs sharded:
        outputs and simulated metrics must agree on every combination."""
        report = run_fuzz(
            FuzzOptions(
                seed=13,
                iterations=50,
                backends=("serial", "sharded"),
                shards=SHARDS,
                stop_on_failure=False,
            )
        )
        details = "\n\n".join(c.describe() for c in report.counterexamples)
        assert report.ok, f"sharded axis diverged from serial:\n{details}"
        assert report.cases_run == 50
        assert report.combinations_checked >= 50 * 2
