"""Unit and integration tests for the plan strategies (SEQ/PAR/GREEDY/1-ROUND/SGF)."""

import pytest

from repro.core.costing import PlanCostEstimator
from repro.core.options import GumboOptions
from repro.core.strategies import (
    BSGF_STRATEGIES,
    SGF_STRATEGIES,
    all_semijoin_specs,
    bsgf_plan,
    build_bsgf_program,
    build_sgf_program,
    register_intermediate_estimates,
)
from repro.cost.estimates import StatisticsCatalog
from repro.mapreduce.engine import MapReduceEngine
from repro.query.reference import evaluate_bsgf, evaluate_sgf
from repro.workloads.queries import bsgf_query_set, database_for, sgf_query

from helpers import (
    as_set,
    disjunctive_query,
    nested_sgf,
    shared_key_query,
    simple_query,
    small_database,
    star_database,
    star_query,
)


def estimator_for(db):
    return PlanCostEstimator(
        StatisticsCatalog(db, sample_size=200), options=GumboOptions()
    )


class TestBSGFStrategies:
    @pytest.mark.parametrize("strategy", ["seq", "par", "greedy", "optimal"])
    @pytest.mark.parametrize(
        "query_factory, db_factory",
        [
            (simple_query, small_database),
            (disjunctive_query, small_database),
            (star_query, star_database),
            (shared_key_query, star_database),
        ],
    )
    def test_all_strategies_match_reference(self, strategy, query_factory, db_factory):
        query, db = query_factory(), db_factory()
        program = build_bsgf_program([query], strategy, estimator_for(db))
        result = MapReduceEngine().run_program(program, db)
        assert as_set(result.outputs[query.output]) == as_set(evaluate_bsgf(query, db))

    def test_one_round_matches_reference_when_applicable(self):
        query, db = shared_key_query(), star_database()
        program = build_bsgf_program([query], "1-round", estimator_for(db))
        result = MapReduceEngine().run_program(program, db)
        assert as_set(result.outputs[query.output]) == as_set(evaluate_bsgf(query, db))

    def test_one_round_rejected_when_not_applicable(self):
        query, db = star_query(), star_database()
        with pytest.raises(ValueError):
            build_bsgf_program([query], "1-round", estimator_for(db))

    def test_greedy_requires_estimator(self):
        with pytest.raises(ValueError):
            build_bsgf_program([star_query()], "greedy")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_bsgf_program([star_query()], "magic", estimator_for(star_database()))

    def test_no_queries_rejected(self):
        with pytest.raises(ValueError):
            build_bsgf_program([], "par")

    def test_par_builds_one_msj_job_per_semijoin(self):
        query, db = star_query(), star_database()
        program = build_bsgf_program([query], "par", estimator_for(db))
        assert len(program) == len(query.semijoin_specs()) + 1
        assert program.rounds() == 2

    def test_greedy_on_shared_guard_builds_fewer_jobs(self):
        query, db = star_query(), star_database()
        par = build_bsgf_program([query], "par", estimator_for(db))
        greedy = build_bsgf_program([query], "greedy", estimator_for(db))
        assert len(greedy) < len(par)

    def test_seq_rounds_grow_with_conjunction_size(self):
        db = star_database()
        program = build_bsgf_program([star_query()], "seq", estimator_for(db))
        assert program.rounds() == 4

    def test_multiple_queries_evaluated_together(self):
        queries = bsgf_query_set("A5")
        db = database_for(queries, guard_tuples=200, selectivity=0.5, seed=1)
        program = build_bsgf_program(queries, "greedy", estimator_for(db))
        result = MapReduceEngine().run_program(program, db)
        for query in queries:
            assert as_set(result.outputs[query.output]) == as_set(
                evaluate_bsgf(query, db)
            )

    def test_strategy_name_normalisation(self):
        query, db = shared_key_query(), star_database()
        program = build_bsgf_program([query], "GREEDY", estimator_for(db))
        assert len(program) >= 2
        # "ONE_ROUND" is accepted as an alias of the canonical "1-round".
        aliased = build_bsgf_program([query], "ONE_ROUND", estimator_for(db))
        assert len(aliased) == 1

    def test_bsgf_plan_views(self):
        query, db = star_query(), star_database()
        est = estimator_for(db)
        par = bsgf_plan([query], "par", est)
        greedy = bsgf_plan([query], "greedy", est)
        one_round = bsgf_plan([query], "1-round", est)
        assert len(par.groups) == 4
        assert len(greedy.groups) <= len(par.groups)
        assert len(one_round.groups) == 1
        with pytest.raises(ValueError):
            bsgf_plan([query], "seq", est)


class TestSGFStrategies:
    @pytest.mark.parametrize("strategy", ["sequnit", "parunit", "greedy-sgf"])
    def test_nested_query_matches_reference(self, strategy):
        query = nested_sgf()
        db = small_database()
        estimator = estimator_for(db)
        program = build_sgf_program(query, strategy, estimator)
        result = MapReduceEngine().run_program(program, db)
        reference = evaluate_sgf(query, db)
        for name in query.output_names:
            assert as_set(result.outputs[name]) == as_set(reference[name]), name

    @pytest.mark.parametrize("query_id", ["C1", "C4"])
    @pytest.mark.parametrize("strategy", ["sequnit", "parunit", "greedy-sgf"])
    def test_experiment_queries_match_reference(self, query_id, strategy):
        query = sgf_query(query_id)
        db = database_for(query, guard_tuples=150, selectivity=0.5, seed=3)
        program = build_sgf_program(query, strategy, estimator_for(db))
        result = MapReduceEngine().run_program(program, db)
        reference = evaluate_sgf(query, db)
        for name in query.output_names:
            assert as_set(result.outputs[name]) == as_set(reference[name]), name

    def test_optimal_sgf_matches_reference_on_small_query(self):
        query = nested_sgf()
        db = small_database()
        program = build_sgf_program(query, "optimal-sgf", estimator_for(db))
        result = MapReduceEngine().run_program(program, db)
        reference = evaluate_sgf(query, db)
        assert as_set(result.outputs[query.output]) == as_set(reference[query.output])

    def test_sequnit_has_more_rounds_than_parunit(self):
        query = sgf_query("C1")
        db = database_for(query, guard_tuples=100, selectivity=0.5, seed=3)
        estimator = estimator_for(db)
        sequnit = build_sgf_program(query, "sequnit", estimator)
        parunit = build_sgf_program(query, "parunit", estimator)
        assert sequnit.rounds() > parunit.rounds()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_sgf_program(nested_sgf(), "magic", estimator_for(small_database()))

    def test_greedy_sgf_requires_estimator(self):
        with pytest.raises(ValueError):
            build_sgf_program(nested_sgf(), "greedy-sgf", None)

    def test_register_intermediate_estimates(self):
        query = nested_sgf()
        db = small_database()
        catalog = StatisticsCatalog(db)
        register_intermediate_estimates(query, catalog)
        for name in query.output_names:
            assert catalog.has_relation(name)

    def test_all_semijoin_specs_flattens(self):
        queries = bsgf_query_set("A5")
        specs = all_semijoin_specs(queries)
        assert len(specs) == 8
        assert len({s.output for s in specs}) == 8

    def test_strategy_constants(self):
        assert set(BSGF_STRATEGIES) == {"seq", "par", "greedy", "optimal", "1-round"}
        assert set(SGF_STRATEGIES) == {
            "sequnit",
            "parunit",
            "greedy-sgf",
            "optimal-sgf",
        }
