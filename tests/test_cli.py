"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.io import load_database, save_database
from repro.model.database import Database


@pytest.fixture
def data_dir(tmp_path):
    db = Database.from_dict(
        {
            "R": [(1, 2), (3, 4), (5, 6)],
            "S": [(1,), (5,)],
            "T": [(4,)],
        }
    )
    directory = str(tmp_path / "data")
    save_database(db, directory)
    return directory


QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);"


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_query_requires_data(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["query", "--query", QUERY])

    def test_experiment_choices(self):
        args = build_parser().parse_args(["experiment", "figure3", "--scale", "1e-6"])
        assert args.name == "figure3"
        assert args.scale == 1e-6
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "figure99"])


class TestQueryCommand:
    def test_query_inline(self, data_dir, capsys):
        code = main(["query", "--query", QUERY, "--data", data_dir])
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy: greedy" in out
        assert "Z: 3 tuples" in out
        assert "net_time_s" in out

    def test_query_from_file_with_plan_and_output(self, data_dir, tmp_path, capsys):
        query_file = tmp_path / "query.sgf"
        query_file.write_text(QUERY)
        out_dir = str(tmp_path / "out")
        code = main(
            [
                "query",
                "--query-file",
                str(query_file),
                "--data",
                data_dir,
                "--strategy",
                "par",
                "--show-plan",
                "--output-dir",
                out_dir,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "MR program" in out
        assert "EvalJob" in out
        loaded = load_database(out_dir)
        assert loaded["Z"].tuples() == {(1, 2), (3, 4), (5, 6)}

    def test_query_with_options_disabled(self, data_dir, capsys):
        code = main(
            [
                "query",
                "--query",
                QUERY,
                "--data",
                data_dir,
                "--no-packing",
                "--no-tuple-reference",
                "--cost-model",
                "wang",
            ]
        )
        assert code == 0
        assert "Z: 3 tuples" in capsys.readouterr().out


class TestPlanCommand:
    def test_plan_describes_jobs(self, data_dir, capsys):
        code = main(["plan", "--query", QUERY, "--data", data_dir, "--strategy", "par"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MSJJob" in out
        assert "EvalJob" in out
        assert "rounds" in out


class TestGenerateCommand:
    def test_generate_bsgf_workload(self, tmp_path, capsys):
        out_dir = str(tmp_path / "a3")
        code = main(
            [
                "generate",
                "A3",
                out_dir,
                "--guard-tuples",
                "50",
                "--selectivity",
                "0.5",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "generated 5 relations" in out
        db = load_database(out_dir)
        assert len(db["R"]) == 50

    def test_generate_sgf_workload(self, tmp_path, capsys):
        out_dir = str(tmp_path / "c4")
        code = main(["generate", "C4", out_dir, "--guard-tuples", "30"])
        assert code == 0
        db = load_database(out_dir)
        assert "R" in db and "G" in db and "H" in db

    def test_generate_then_query_round_trip(self, tmp_path, capsys):
        out_dir = str(tmp_path / "a3data")
        main(["generate", "A3", out_dir, "--guard-tuples", "40"])
        capsys.readouterr()
        query = (
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
            "WHERE S(x) AND T(x) AND U(x) AND V(x);"
        )
        code = main(
            ["query", "--query", query, "--data", out_dir, "--strategy", "1-round"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy: 1-round" in out


class TestExperimentCommand:
    def test_experiment_figure3(self, capsys):
        code = main(["experiment", "figure3", "--scale", "5e-7", "--nodes", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "GREEDY" in out

    def test_experiment_table3(self, capsys):
        code = main(["experiment", "table3", "--scale", "5e-7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "selectivity" in out


class TestAutoCommand:
    def test_auto_prints_costs_and_winner(self, capsys):
        code = main(["auto", "A3", "--guard-tuples", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "AUTO chose" in out
        # Every applicable BSGF strategy shows up with a cost.
        for name in ("seq", "par", "greedy", "1-round"):
            assert name in out

    def test_auto_show_plan(self, capsys):
        code = main(["auto", "A1", "--guard-tuples", "200", "--show-plan"])
        out = capsys.readouterr().out
        assert code == 0
        assert "MR program" in out

    def test_query_strategy_auto(self, data_dir, capsys):
        code = main(
            ["query", "--query", QUERY, "--data", data_dir, "--strategy", "auto"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Z: 3 tuples" in out


class TestServeCommand:
    def test_serve_reports_cache_and_verifies(self, capsys):
        code = main(
            (
                "serve",
                "--query-ids",
                "A1,A3",
                "--requests",
                "8",
                "--clients",
                "2",
                "--guard-tuples",
                "150",
                "--verify",
            )
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "plan-cache hit rate" in out
        assert "all match" in out

    def test_serve_mixed_nested_workloads(self, capsys):
        # C1 and C2 reuse output names (Z1..Z5); queries are served
        # independently so the shared names must not interfere.
        code = main(
            (
                "serve",
                "--query-ids",
                "C1,C2",
                "--requests",
                "4",
                "--clients",
                "2",
                "--guard-tuples",
                "80",
                "--strategy",
                "greedy",
                "--verify",
            )
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all match" in out

    def test_serve_rejects_empty_ids(self):
        with pytest.raises(SystemExit):
            main(["serve", "--query-ids", " , ", "--requests", "2"])


class TestDeltaCommand:
    def test_delta_incremental_matches_recompute(self, capsys):
        code = main(
            [
                "delta",
                "--query-id",
                "A3",
                "--guard-tuples",
                "600",
                "--insert-fraction",
                "0.02",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "outputs identical:     yes" in out
        assert "incremental refresh" in out

    def test_delta_direct_mode(self, capsys):
        code = main(["delta", "--guard-tuples", "300", "--mode", "direct"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 restricted MR runs" in out


class TestServeIncremental:
    def test_serve_incremental_refreshes_and_verifies(self, capsys):
        code = main(
            [
                "serve",
                "--query-ids",
                "A1,A3",
                "--requests",
                "8",
                "--guard-tuples",
                "200",
                "--incremental",
                "--insert-tuples",
                "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "incremental refresh(es)" in out
        assert "refreshed results match direct execution" in out


class TestFuzzIncrementalCommand:
    def test_fuzz_incremental_smoke(self, capsys):
        code = main(
            [
                "fuzz",
                "--incremental",
                "--seed",
                "2",
                "--iterations",
                "4",
                "--backend",
                "serial",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "incremental refreshes agree with full recomputes" in out


class TestKernelCommands:
    def test_bench_kernels_compares_paths_per_workload(self, capsys):
        code = main(["bench", "--kernels", "--guard-tuples", "60"])
        out = capsys.readouterr().out
        assert code == 0
        # One comparison row per Section 5 workload, plus the verified footer.
        for query_id in ("A1", "A3", "B2", "C1", "C4"):
            assert f"\n{query_id} " in out or out.startswith(f"{query_id} "), query_id
        assert "interpreted_s" in out
        assert "outputs and simulated metrics identical across paths: yes" in out

    def test_query_kernel_mode_off_matches_default(self, data_dir, capsys):
        runs = {}
        for mode in ("off", "auto", "on"):
            code = main(
                [
                    "query",
                    "--query",
                    QUERY,
                    "--data",
                    data_dir,
                    "--kernel-mode",
                    mode,
                ]
            )
            assert code == 0
            runs[mode] = capsys.readouterr().out
        # Identical outputs and identical simulated metrics in every mode
        # (only the wall_clock_s line may differ between runs).
        def stable(text):
            return [
                line
                for line in text.splitlines()
                if not line.startswith("wall_clock_s")
            ]

        assert stable(runs["off"]) == stable(runs["auto"]) == stable(runs["on"])

    def test_query_rejects_unknown_kernel_mode(self, data_dir):
        with pytest.raises(SystemExit):
            main(
                [
                    "query",
                    "--query",
                    QUERY,
                    "--data",
                    data_dir,
                    "--kernel-mode",
                    "sometimes",
                ]
            )

    def test_fuzz_no_kernel_axis_smoke(self, capsys):
        code = main(
            [
                "fuzz",
                "--seed",
                "4",
                "--iterations",
                "3",
                "--backend",
                "serial",
                "--no-kernel-axis",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "combinations agree with the reference evaluator" in out


class TestTraceCommand:
    def test_trace_writes_validated_chrome_trace(self, tmp_path, capsys):
        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.prom")
        code = main(
            [
                "trace",
                "A3",
                "--guard-tuples",
                "120",
                "--backend",
                "serial",
                "--trace-out",
                trace_path,
                "--metrics-out",
                metrics_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "request 1 (planning miss):" in out
        assert "request 2 (plan-cache hit):" in out
        assert "service.request" in out
        assert "validated" in out
        from repro import obs

        assert obs.validate_chrome_trace(trace_path) > 0
        with open(metrics_path) as handle:
            text = handle.read()
        assert "repro_service_requests_total 2" in text

    def test_trace_jsonl_format(self, tmp_path, capsys):
        trace_path = str(tmp_path / "spans.jsonl")
        code = main(
            [
                "trace",
                "A1",
                "--guard-tuples",
                "80",
                "--backend",
                "serial",
                "--trace-out",
                trace_path,
                "--trace-format",
                "jsonl",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "(jsonl)" in out
        from repro import obs

        spans = obs.spans_from_jsonl(trace_path)
        assert {"service.request", "gumbo.plan", "job"} <= {s.name for s in spans}

    def test_trace_rejects_unknown_format(self):
        with pytest.raises(SystemExit):
            main(["trace", "A3", "--trace-format", "xml"])


class TestObsFlags:
    def test_query_trace_export(self, data_dir, tmp_path, capsys):
        trace_path = str(tmp_path / "query-trace.json")
        code = main(
            [
                "query",
                "--query",
                QUERY,
                "--data",
                data_dir,
                "--trace",
                "--trace-out",
                trace_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote" in out
        from repro import obs

        assert obs.validate_chrome_trace(trace_path) > 0

    def test_serve_stats_json_to_stdout(self, capsys):
        import json as json_module

        code = main(
            [
                "serve",
                "--query-ids",
                "A1",
                "--requests",
                "4",
                "--guard-tuples",
                "80",
                "--stats-json",
                "-",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        start = out.index("{")
        end = out.rindex("}") + 1
        snapshot = json_module.loads(out[start:end])
        assert snapshot["stats"]["queries_served"] == 4
        assert snapshot["history"]
        record = next(iter(snapshot["history"].values()))
        assert record["queries"] == 4
        assert "exec_seconds" in record
        assert "repro_service_requests_total" in snapshot["metrics"]

    def test_serve_stats_json_to_file(self, tmp_path, capsys):
        import json as json_module

        stats_path = str(tmp_path / "stats.json")
        code = main(
            [
                "serve",
                "--query-ids",
                "A1",
                "--requests",
                "3",
                "--guard-tuples",
                "80",
                "--stats-json",
                stats_path,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "wrote service stats" in out
        with open(stats_path) as handle:
            snapshot = json_module.load(handle)
        assert snapshot["stats"]["queries_served"] == 3
        assert snapshot["stats"]["queries_failed"] == 0
