"""Unit tests for repro.model.relation."""

import pytest

from repro.model.relation import (
    DEFAULT_BYTES_PER_FIELD,
    Relation,
    SchemaError,
    tuple_sort_key,
)


class TestConstruction:
    def test_from_tuples_infers_arity(self):
        rel = Relation.from_tuples("R", [(1, 2), (3, 4)])
        assert rel.arity == 2
        assert len(rel) == 2

    def test_from_tuples_explicit_arity_allows_empty(self):
        rel = Relation.from_tuples("R", [], arity=3)
        assert rel.arity == 3
        assert len(rel) == 0

    def test_from_tuples_empty_without_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_tuples("R", [])

    def test_invalid_name_and_arity(self):
        with pytest.raises(ValueError):
            Relation("", 1)
        with pytest.raises(ValueError):
            Relation("R", 0)
        with pytest.raises(ValueError):
            Relation("R", 1, bytes_per_field=0)


class TestMutation:
    def test_add_and_contains(self):
        rel = Relation("R", 2)
        rel.add((1, 2))
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_add_wrong_arity_rejected(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.add((1,))

    def test_duplicates_collapse(self):
        rel = Relation("R", 1)
        rel.add((1,))
        rel.add((1,))
        assert len(rel) == 1

    def test_update_discard_clear(self):
        rel = Relation("R", 1)
        rel.update([(1,), (2,), (3,)])
        rel.discard((2,))
        assert sorted(rel.tuples()) == [(1,), (3,)]
        rel.clear()
        assert len(rel) == 0
        assert not rel

    def test_lists_are_normalised_to_tuples(self):
        rel = Relation("R", 2)
        rel.add([1, 2])
        assert (1, 2) in rel
        assert [1, 2] in rel


class TestAccess:
    def test_sorted_tuples_deterministic(self):
        rel = Relation.from_tuples("R", [(3,), (1,), (2,)])
        assert rel.sorted_tuples() == [(1,), (2,), (3,)]
        other = Relation.from_tuples("R", [(2,), (3,), (1,)])
        assert other.sorted_tuples() == rel.sorted_tuples()

    def test_sorted_tuples_deterministic_with_nan(self):
        # NaN compares False to everything, so it gets its own sort bucket;
        # the order must not depend on set iteration order (PYTHONHASHSEED).
        nan = float("nan")
        rel = Relation.from_tuples("R", [(nan, 1), (2.0, 3.0), (nan, 2), (1.0, 5.0)])
        ordered = rel.sorted_tuples()
        tails = [row[1] for row in ordered]
        assert tails == [1, 2, 5.0, 3.0]

    def test_sorted_tuples_orders_mixed_types_without_raising(self):
        rel = Relation.from_tuples("R", [("b", 1), (2, "a"), (1, 1), ("a", None)])
        ordered = rel.sorted_tuples()
        assert sorted(ordered, key=tuple_sort_key) == ordered
        assert set(ordered) == rel.tuples()

    def test_sorted_tuples_cache_invalidated_on_mutation(self):
        rel = Relation.from_tuples("R", [(2,), (1,)])
        first = rel.sorted_tuples()
        assert rel.sorted_tuples() is first  # cached between reads
        rel.add((0,))
        assert rel.sorted_tuples() == [(0,), (1,), (2,)]
        rel.discard((1,))
        assert rel.sorted_tuples() == [(0,), (2,)]
        rel.clear()
        assert rel.sorted_tuples() == []

    def test_copy_is_independent(self):
        rel = Relation.from_tuples("R", [(1,)])
        clone = rel.copy()
        clone.add((2,))
        assert len(rel) == 1
        assert len(clone) == 2

    def test_copy_on_write_isolates_source_mutations(self):
        rel = Relation.from_tuples("R", [(1,), (2,)])
        clone = rel.copy()
        rel.add((3,))
        assert len(clone) == 2
        assert len(rel) == 3
        rel.discard((1,))
        assert (1,) in clone

    def test_copy_shares_until_mutation(self):
        rel = Relation.from_tuples("R", [(1,)])
        clone = rel.copy()
        assert clone.tuples() is rel.tuples()  # shared storage
        clone.add((2,))
        assert clone.tuples() is not rel.tuples()  # detached on write

    def test_copy_rename(self):
        rel = Relation.from_tuples("R", [(1,)])
        assert rel.copy("S").name == "S"

    def test_update_validates_arity_in_one_batch(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.update([(1, 2), (3,)])
        rel.update([(1, 2), (3, 4)])
        assert len(rel) == 2

    def test_iteration(self):
        rel = Relation.from_tuples("R", [(1,), (2,)])
        assert sorted(iter(rel)) == [(1,), (2,)]


class TestSizes:
    def test_default_bytes_per_field_matches_paper(self):
        # 100M 4-ary tuples at 10 bytes/field = 4 GB; 100M unary tuples = 1 GB.
        assert DEFAULT_BYTES_PER_FIELD == 10
        guard = Relation("R", 4)
        assert guard.tuple_size_bytes == 40
        conditional = Relation("S", 1)
        assert conditional.tuple_size_bytes == 10

    def test_size_bytes_and_mb(self):
        rel = Relation.from_tuples("R", [(i, i) for i in range(100)])
        assert rel.size_bytes() == 100 * 2 * 10
        assert rel.size_mb() == pytest.approx(2000 / (1024 * 1024))

    def test_custom_bytes_per_field(self):
        rel = Relation("R", 2, bytes_per_field=100)
        rel.add((1, 2))
        assert rel.size_bytes() == 200

    def test_repr_mentions_cardinality(self):
        rel = Relation.from_tuples("R", [(1,)])
        assert "tuples=1" in repr(rel)
