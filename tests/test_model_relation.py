"""Unit tests for repro.model.relation."""

import gc
import os
import struct
import subprocess
import sys
import textwrap

import pytest

from repro.exec.partition import map_task_chunks
from repro.model.relation import (
    DEFAULT_BYTES_PER_FIELD,
    ColumnBlock,
    Relation,
    SchemaError,
    tuple_sort_key,
)


class TestConstruction:
    def test_from_tuples_infers_arity(self):
        rel = Relation.from_tuples("R", [(1, 2), (3, 4)])
        assert rel.arity == 2
        assert len(rel) == 2

    def test_from_tuples_explicit_arity_allows_empty(self):
        rel = Relation.from_tuples("R", [], arity=3)
        assert rel.arity == 3
        assert len(rel) == 0

    def test_from_tuples_empty_without_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_tuples("R", [])

    def test_invalid_name_and_arity(self):
        with pytest.raises(ValueError):
            Relation("", 1)
        with pytest.raises(ValueError):
            Relation("R", 0)
        with pytest.raises(ValueError):
            Relation("R", 1, bytes_per_field=0)


class TestMutation:
    def test_add_and_contains(self):
        rel = Relation("R", 2)
        rel.add((1, 2))
        assert (1, 2) in rel
        assert (2, 1) not in rel

    def test_add_wrong_arity_rejected(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.add((1,))

    def test_duplicates_collapse(self):
        rel = Relation("R", 1)
        rel.add((1,))
        rel.add((1,))
        assert len(rel) == 1

    def test_update_discard_clear(self):
        rel = Relation("R", 1)
        rel.update([(1,), (2,), (3,)])
        rel.discard((2,))
        assert sorted(rel.tuples()) == [(1,), (3,)]
        rel.clear()
        assert len(rel) == 0
        assert not rel

    def test_lists_are_normalised_to_tuples(self):
        rel = Relation("R", 2)
        rel.add([1, 2])
        assert (1, 2) in rel
        assert [1, 2] in rel


class TestAccess:
    def test_sorted_tuples_deterministic(self):
        rel = Relation.from_tuples("R", [(3,), (1,), (2,)])
        assert rel.sorted_tuples() == [(1,), (2,), (3,)]
        other = Relation.from_tuples("R", [(2,), (3,), (1,)])
        assert other.sorted_tuples() == rel.sorted_tuples()

    def test_sorted_tuples_deterministic_with_nan(self):
        # NaN compares False to everything, so it gets its own sort bucket;
        # the order must not depend on set iteration order (PYTHONHASHSEED).
        nan = float("nan")
        rel = Relation.from_tuples("R", [(nan, 1), (2.0, 3.0), (nan, 2), (1.0, 5.0)])
        ordered = rel.sorted_tuples()
        tails = [row[1] for row in ordered]
        assert tails == [1, 2, 5.0, 3.0]

    def test_sorted_tuples_orders_mixed_types_without_raising(self):
        rel = Relation.from_tuples("R", [("b", 1), (2, "a"), (1, 1), ("a", None)])
        ordered = rel.sorted_tuples()
        assert sorted(ordered, key=tuple_sort_key) == ordered
        assert set(ordered) == rel.tuples()

    def test_sorted_tuples_cache_invalidated_on_mutation(self):
        rel = Relation.from_tuples("R", [(2,), (1,)])
        first = rel.sorted_tuples()
        assert rel.sorted_tuples() is first  # cached between reads
        rel.add((0,))
        assert rel.sorted_tuples() == [(0,), (1,), (2,)]
        rel.discard((1,))
        assert rel.sorted_tuples() == [(0,), (2,)]
        rel.clear()
        assert rel.sorted_tuples() == []

    def test_copy_is_independent(self):
        rel = Relation.from_tuples("R", [(1,)])
        clone = rel.copy()
        clone.add((2,))
        assert len(rel) == 1
        assert len(clone) == 2

    def test_copy_on_write_isolates_source_mutations(self):
        rel = Relation.from_tuples("R", [(1,), (2,)])
        clone = rel.copy()
        rel.add((3,))
        assert len(clone) == 2
        assert len(rel) == 3
        rel.discard((1,))
        assert (1,) in clone

    def test_copy_shares_until_mutation(self):
        rel = Relation.from_tuples("R", [(1,)])
        clone = rel.copy()
        assert clone.tuples() is rel.tuples()  # shared storage
        clone.add((2,))
        assert clone.tuples() is not rel.tuples()  # detached on write

    def test_copy_rename(self):
        rel = Relation.from_tuples("R", [(1,)])
        assert rel.copy("S").name == "S"

    def test_update_validates_arity_in_one_batch(self):
        rel = Relation("R", 2)
        with pytest.raises(SchemaError):
            rel.update([(1, 2), (3,)])
        rel.update([(1, 2), (3, 4)])
        assert len(rel) == 2

    def test_iteration(self):
        rel = Relation.from_tuples("R", [(1,), (2,)])
        assert sorted(iter(rel)) == [(1,), (2,)]


class TestSizes:
    def test_default_bytes_per_field_matches_paper(self):
        # 100M 4-ary tuples at 10 bytes/field = 4 GB; 100M unary tuples = 1 GB.
        assert DEFAULT_BYTES_PER_FIELD == 10
        guard = Relation("R", 4)
        assert guard.tuple_size_bytes == 40
        conditional = Relation("S", 1)
        assert conditional.tuple_size_bytes == 10

    def test_size_bytes_and_mb(self):
        rel = Relation.from_tuples("R", [(i, i) for i in range(100)])
        assert rel.size_bytes() == 100 * 2 * 10
        assert rel.size_mb() == pytest.approx(2000 / (1024 * 1024))

    def test_custom_bytes_per_field(self):
        rel = Relation("R", 2, bytes_per_field=100)
        rel.add((1, 2))
        assert rel.size_bytes() == 200

    def test_repr_mentions_cardinality(self):
        rel = Relation.from_tuples("R", [(1,)])
        assert "tuples=1" in repr(rel)


class TestCopyOnWriteLifecycle:
    """The owner-counted share state behind :meth:`Relation.copy`."""

    def test_clear_on_shared_detaches_without_touching_siblings(self):
        rel = Relation.from_tuples("R", [(1,), (2,)])
        clone = rel.copy()
        shared = clone.tuples()
        rel.clear()
        assert len(rel) == 0
        assert clone.tuples() is shared
        assert sorted(clone.tuples()) == [(1,), (2,)]
        # rel detached on clear, so the clone is the sole surviving owner
        # and mutates the shared set in place instead of copying it.
        clone.add((3,))
        assert clone.tuples() is shared

    def test_mutation_after_clone_death_skips_the_copy(self):
        rel = Relation.from_tuples("R", [(1,)])
        shared = rel.tuples()
        clone = rel.copy()
        assert clone.tuples() is shared
        del clone
        gc.collect()
        # The dead clone's finalizer released its ownership, so the survivor
        # must mutate the original set rather than pay for a defensive copy.
        rel.add((2,))
        assert rel.tuples() is shared
        assert sorted(rel.tuples()) == [(1,), (2,)]

    def test_clear_after_clone_death_clears_in_place(self):
        rel = Relation.from_tuples("R", [(1,)])
        shared = rel.tuples()
        clone = rel.copy()
        del clone
        gc.collect()
        rel.clear()
        assert rel.tuples() is shared
        assert len(shared) == 0


class TestSortDeterminism:
    def test_nan_order_stable_across_hash_seeds(self):
        """Two NaNs with different bit payloads sort identically under any
        PYTHONHASHSEED: the sort key breaks the tie on the IEEE-754 bits, not
        on set iteration order."""
        script = textwrap.dedent(
            """
            import struct
            from repro.model.relation import Relation

            quiet = float("nan")
            payload = struct.unpack(">d", bytes.fromhex("7ff8000000000001"))[0]
            rows = [
                (quiet, "a"),
                (payload, "a"),
                (quiet, "c"),
                (payload, "b"),
                (2.0, "d"),
            ]
            rel = Relation.from_tuples("R", rows)

            def show(value):
                if isinstance(value, float):
                    return struct.pack(">d", value).hex()
                return repr(value)

            for row in rel.sorted_tuples():
                print(",".join(show(value) for value in row))
            """
        )
        src = os.path.abspath(
            os.path.join(os.path.dirname(__file__), os.pardir, "src")
        )
        outputs = set()
        for seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=src)
            result = subprocess.run(
                [sys.executable, "-c", script],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.add(result.stdout)
        assert len(outputs) == 1, "sorted order varied with the hash seed"
        assert next(iter(outputs)).count("\n") == 5


class TestColumnBlock:
    def test_from_rows_roundtrip_and_sequence_compat(self):
        rows = [(1, "a"), (2, "b"), (3, "c")]
        block = ColumnBlock.from_rows(rows)
        assert block.arity == 2
        assert block.length == 3
        assert block.columns == ((1, 2, 3), ("a", "b", "c"))
        assert block.rows() == rows
        assert list(block) == rows
        assert block[1] == (2, "b")
        assert len(block) == 3

    def test_empty_block_keeps_declared_arity(self):
        block = ColumnBlock.from_rows([], arity=4)
        assert block.length == 0
        assert block.arity == 4
        assert block.rows() == []

    def test_chunks_match_map_task_boundaries(self):
        rows = [(i, i * i) for i in range(11)]
        for mappers in (1, 2, 3, 4, 11):
            count = min(mappers, len(rows)) or 1
            expected = [list(chunk) for chunk in map_task_chunks(rows, count)]
            got = ColumnBlock.from_rows(rows).chunks(count)
            assert [chunk.rows() for chunk in got] == expected

    def test_key_tuples_and_distinct_keys_are_memoised(self):
        block = ColumnBlock.from_rows([(1, "a"), (2, "b"), (1, "c")])
        first = block.key_tuples((0,))
        assert first == [(1,), (2,), (1,)]
        assert block.key_tuples((0,)) is first  # cached per position pattern
        assert block.key_tuples((1, 0)) == [("a", 1), ("b", 2), ("c", 1)]
        distinct = block.distinct_keys((0,))
        assert distinct == {(1,), (2,)}
        assert block.distinct_keys((0,)) is distinct

    def test_packed_typed_arrays_and_object_fallback(self):
        block = ColumnBlock.from_rows(
            [(1, 1.5, "a", True, 2**70), (2, 2.5, "b", False, 1)]
        )
        length, arity, columns = block.packed()
        kinds = [kind for kind, _ in columns]
        # Exactly-int columns pack as int64, exactly-float as double; str,
        # bool (would be coerced) and beyond-int64 columns ship as objects.
        assert kinds == ["q", "d", "o", "o", "o"]
        rebuilt = ColumnBlock.unpack((length, arity, columns))
        assert rebuilt.rows() == block.rows()
        assert rebuilt.rows()[0][3] is True

    def test_packed_preserves_float_bits(self):
        quiet = float("nan")
        payload = struct.unpack(">d", bytes.fromhex("7ff8000000000001"))[0]
        block = ColumnBlock.from_rows([(quiet,), (payload,), (-0.0,)])
        rebuilt = ColumnBlock.unpack(block.packed())
        original = [struct.pack(">d", row[0]) for row in block.rows()]
        shipped = [struct.pack(">d", row[0]) for row in rebuilt.rows()]
        assert original == shipped

    def test_packed_empty_block_roundtrips(self):
        block = ColumnBlock.from_rows([], arity=2)
        rebuilt = ColumnBlock.unpack(block.packed())
        assert rebuilt.length == 0
        assert rebuilt.arity == 2
        assert rebuilt.rows() == []

    def test_relation_column_chunks_stride_the_sorted_order(self):
        rel = Relation.from_tuples("R", [(i % 4, i) for i in range(10)])
        chunks = rel.column_chunks(3)
        assert len(chunks) == 3
        ordered = rel.sorted_tuples()
        assert [chunk.rows() for chunk in chunks] == [
            ordered[index::3] for index in range(3)
        ]
