"""Unit tests for Greedy-BSGF / BSGF-Opt and Greedy-SGF / SGF-Opt."""

import math

import pytest

from repro.core.costing import PlanCostEstimator
from repro.core.greedy_bsgf import (
    greedy_partition,
    optimal_partition,
    partition_cost,
    set_partitions,
    single_group_partition,
    singleton_partition,
)
from repro.core.greedy_sgf import (
    greedy_multiway_sort,
    optimal_multiway_sort,
    parunit_sort,
    sequnit_sort,
    sort_cost,
    validate_sort,
)
from repro.core.options import GumboOptions
from repro.cost.estimates import StatisticsCatalog
from repro.query.dependency import DependencyGraph
from repro.workloads.queries import database_for, query_a4, sgf_query

from helpers import star_database, star_query


def _bell(n: int) -> int:
    """Bell numbers via the recurrence with binomial coefficients."""
    bell = [1]
    for i in range(n):
        bell.append(sum(math.comb(i, k) * bell[k] for k in range(i + 1)))
    return bell[n]


@pytest.fixture
def estimator():
    return PlanCostEstimator(
        StatisticsCatalog(star_database(), sample_size=100),
        options=GumboOptions(),
    )


class TestSetPartitions:
    @pytest.mark.parametrize(
        "n, expected", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]
    )
    def test_counts_are_bell_numbers(self, n, expected):
        assert expected == _bell(n)
        assert len(list(set_partitions(list(range(n))))) == expected

    def test_every_partition_covers_all_items(self):
        items = ["a", "b", "c", "d"]
        for partition in set_partitions(items):
            flattened = sorted(x for block in partition for x in block)
            assert flattened == sorted(items)
            assert all(block for block in partition)

    def test_partitions_are_distinct(self):
        seen = set()
        for partition in set_partitions([1, 2, 3, 4]):
            key = frozenset(frozenset(block) for block in partition)
            assert key not in seen
            seen.add(key)


class TestGreedyBSGF:
    def test_shared_guard_semijoins_are_grouped(self, estimator):
        specs = star_query().semijoin_specs()
        groups = greedy_partition(specs, estimator)
        # All four semi-joins share the guard R: grouping them is a clear win.
        assert len(groups) == 1
        assert len(groups[0]) == 4

    def test_partition_is_a_partition(self, estimator):
        specs = star_query().semijoin_specs()
        groups = greedy_partition(specs, estimator)
        outputs = sorted(s.output for g in groups for s in g)
        assert outputs == sorted(s.output for s in specs)

    def test_disjoint_queries_gain_only_the_job_overhead(self):
        """A4's two queries share nothing: merging them can only save cost_h.

        Merging semi-joins of the *same* guard additionally saves the repeated
        guard scan, so its gain must be strictly larger.
        """
        queries = query_a4()
        db = database_for(queries, guard_tuples=300, selectivity=0.5, seed=4)
        estimator = PlanCostEstimator(StatisticsCatalog(db), options=GumboOptions())
        first, second = queries
        disjoint_gain = estimator.gain(
            first.semijoin_specs()[:1], second.semijoin_specs()[:1]
        )
        shared_gain = estimator.gain(
            first.semijoin_specs()[:1], first.semijoin_specs()[1:2]
        )
        overhead = estimator.cost_model.constants.job_overhead
        assert disjoint_gain == pytest.approx(overhead, rel=0.2)
        assert shared_gain > disjoint_gain

    def test_singleton_input(self, estimator):
        specs = star_query().semijoin_specs()[:1]
        assert greedy_partition(specs, estimator) == [[specs[0]]]

    def test_empty_input(self, estimator):
        assert greedy_partition([], estimator) == []

    def test_greedy_never_worse_than_singletons(self, estimator):
        specs = star_query().semijoin_specs()
        greedy_cost = partition_cost(greedy_partition(specs, estimator), estimator)
        par_cost = partition_cost(singleton_partition(specs), estimator)
        assert greedy_cost <= par_cost + 1e-9

    def test_greedy_matches_bruteforce_on_small_query(self, estimator):
        specs = star_query().semijoin_specs()
        greedy_cost = partition_cost(greedy_partition(specs, estimator), estimator)
        _, optimal_cost = optimal_partition(specs, estimator)
        assert greedy_cost == pytest.approx(optimal_cost, rel=0.05)

    def test_optimal_partition_guard(self, estimator):
        specs = star_query().semijoin_specs() * 3
        with pytest.raises(ValueError):
            optimal_partition(specs, estimator, max_specs=5)

    def test_optimal_partition_empty(self, estimator):
        partition, cost = optimal_partition([], estimator)
        assert partition == [] and cost == 0.0

    def test_helper_partitions(self):
        specs = star_query().semijoin_specs()
        assert [len(g) for g in singleton_partition(specs)] == [1, 1, 1, 1]
        assert [len(g) for g in single_group_partition(specs)] == [4]
        assert single_group_partition([]) == []


class TestGreedySGF:
    @pytest.fixture
    def graph(self):
        return DependencyGraph(sgf_query("C1"))

    def _estimator_for(self, query_id):
        query = sgf_query(query_id)
        db = database_for(query, guard_tuples=300, selectivity=0.5, seed=5)
        estimator = PlanCostEstimator(StatisticsCatalog(db), options=GumboOptions())
        from repro.core.strategies import register_intermediate_estimates

        register_intermediate_estimates(query, estimator.catalog)
        return query, estimator

    def test_greedy_sort_is_valid(self, graph):
        groups = greedy_multiway_sort(graph)
        validate_sort(graph, groups)

    @pytest.mark.parametrize("query_id", ["C1", "C2", "C3", "C4"])
    def test_greedy_sort_valid_for_all_experiment_queries(self, query_id):
        graph = DependencyGraph(sgf_query(query_id))
        validate_sort(graph, greedy_multiway_sort(graph))

    def test_greedy_sort_groups_overlapping_queries(self, graph):
        groups = greedy_multiway_sort(graph)
        # C1's level-1 subqueries Z4 and Z5 reference Z1/Z3 respectively and
        # share no relations, but the level-0 queries Z1, Z2, Z3 don't overlap
        # either, so the greedy sort should at least keep a valid shape with
        # every query present exactly once.
        names = sorted(n for g in groups for n in g)
        assert names == sorted(graph.nodes)

    def test_sequnit_and_parunit_sorts(self, graph):
        sequnit = sequnit_sort(graph)
        assert all(len(group) == 1 for group in sequnit)
        validate_sort(graph, sequnit)
        parunit = parunit_sort(graph)
        validate_sort(graph, parunit)
        assert len(parunit) == len(graph.levels())

    def test_sort_cost_sums_groups(self, graph):
        groups = [["Z1"], ["Z2"], ["Z3"], ["Z4"], ["Z5"]]
        cost = sort_cost(graph, groups, lambda queries: float(len(queries)))
        assert cost == 5.0

    def test_greedy_not_worse_than_sequnit_for_experiment_queries(self):
        for query_id in ("C1", "C4"):
            query, estimator = self._estimator_for(query_id)
            graph = DependencyGraph(query)
            from repro.core.strategies import sgf_group_cost

            def cost_fn(queries):
                return sgf_group_cost(queries, estimator)

            greedy_cost = sort_cost(graph, greedy_multiway_sort(graph), cost_fn)
            sequnit_cost = sort_cost(graph, sequnit_sort(graph), cost_fn)
            assert greedy_cost <= sequnit_cost + 1e-6

    def test_greedy_close_to_bruteforce_on_small_query(self):
        query, estimator = self._estimator_for("C4")
        graph = DependencyGraph(query)
        from repro.core.strategies import sgf_group_cost

        def cost_fn(queries):
            return sgf_group_cost(queries, estimator)

        greedy_cost = sort_cost(graph, greedy_multiway_sort(graph), cost_fn)
        _, optimal_cost = optimal_multiway_sort(graph, cost_fn, max_nodes=6)
        assert greedy_cost <= 1.2 * optimal_cost

    def test_validate_sort_rejects_bad_groups(self, graph):
        with pytest.raises(ValueError):
            validate_sort(graph, [["Z1", "Z4"], ["Z2", "Z3", "Z5"]])
