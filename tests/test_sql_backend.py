"""SQL-backend parity on the values SQL is worst at.

The sqlite3 backend stores canonical text tokens, not the Python values
(see docs/backends.md), precisely so that the cases below round-trip
bit-identically to the serial reference: NaN object-identity joins,
``-0.0``/``0`` unification, ``None``, mixed-type columns and empty
relations.  Each case asserts identical output relations *and* identical
simulated metrics.  NaN coverage is in-process only — pickling clones NaN
into distinct objects — which is also why the fuzzer's value profiles
exclude NaN and these pins live here instead.

Also covered: the ``sqlite``/``sqlite3`` aliases, on-disk scratch
databases (``sql_db=``), and the interpreted fallback for jobs the
compiler must not touch (salted skew jobs, unencodable values).
"""

from __future__ import annotations

import sqlite3
import struct

import pytest

from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.core.skew import SkewAwareMSJJob
from repro.core.strategies import applicable_strategies
from repro.exec import SQLBackend, SimulatedBackend, make_backend
from repro.exec.sql.codec import SQLUnsupportedValueError, ValueCodec, encode_scalar
from repro.mapreduce.engine import MapReduceEngine
from repro.model.database import Database
from repro.model.relation import Relation
from repro.query.parser import parse_bsgf, parse_sgf


def assert_sql_parity(query, database, strategy=None, options=None, sql_db=None):
    """serial and sql runs must agree on outputs and every simulated metric."""
    options = options or GumboOptions()
    results = {}
    for backend_name in ("serial", "sql"):
        backend = make_backend(
            backend_name, sql_db=sql_db if backend_name == "sql" else None
        )
        try:
            gumbo = Gumbo(backend=backend, options=options)
            results[backend_name] = gumbo.execute(query, database, strategy)
        finally:
            backend.close()
    serial, sql = results["serial"], results["sql"]
    context = f"{strategy}"
    assert set(serial.all_outputs) == set(sql.all_outputs), context
    for name in serial.all_outputs:
        assert (
            serial.all_outputs[name].tuples() == sql.all_outputs[name].tuples()
        ), f"{context}:{name}"
    assert serial.summary() == sql.summary(), context
    assert serial.metrics.level_net_times == sql.metrics.level_net_times, context
    assert set(serial.metrics.job_metrics) == set(sql.metrics.job_metrics)
    for job_id, serial_job in serial.metrics.job_metrics.items():
        sql_job = sql.metrics.job_metrics[job_id]
        assert serial_job.reducers == sql_job.reducers, job_id
        assert serial_job.mappers == sql_job.mappers, job_id
        assert serial_job.intermediate_mb == sql_job.intermediate_mb, job_id
        assert serial_job.output_records == sql_job.output_records, job_id
        assert serial_job.map_task_durations == sql_job.map_task_durations, job_id
        assert (
            serial_job.reduce_task_durations == sql_job.reduce_task_durations
        ), job_id
    assert sql.metrics.backend == "sql"


def each_strategy(query):
    return applicable_strategies(query, include_optimal=False)


# -- value edge cases ---------------------------------------------------------------


class TestNaN:
    def test_nan_identity_join_semantics(self):
        """A NaN guard key joins the *same* NaN object and no other.

        The engine's hash join buckets by object (``hash(nan)`` works even
        though ``nan == nan`` is false); the codec's per-object tokens must
        reproduce exactly that.
        """
        nan = float("nan")
        other_nan = struct.unpack(">d", bytes.fromhex("7ff8000000000001"))[0]
        database = Database.from_dict(
            {
                "R": [(nan, 1), (other_nan, 2), (1.0, nan), (2.0, 3.0), (2.0, nan)],
                "S": [(nan,), (2.0,)],
            }
        )
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)

    def test_nan_under_negation(self):
        """NOT S(x) must *exclude* the guard row holding S's NaN object."""
        nan = float("nan")
        stranger = float("nan")
        database = Database.from_dict(
            {"R": [(nan, 1), (stranger, 2), (3.0, 3)], "S": [(nan,), (9.0,)]}
        )
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE NOT S(x);")
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)

    def test_repeated_variable_never_matches_nan(self):
        """``R(x, x)`` compares with ``==``, under which NaN misses itself."""
        nan = float("nan")
        database = Database.from_dict(
            {"R": [(nan, nan), (1, 1), (1, 2)], "S": [(nan,), (1,)]}
        )
        query = parse_sgf("Z := SELECT (x) FROM R(x, x) WHERE S(x);")
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)


class TestNumericAndNone:
    def test_negative_zero_unifies_with_zero(self):
        """``-0.0 == 0 == 0.0`` in Python, so all three share one token."""
        database = Database.from_dict(
            {"R": [(-0.0, 1), (0, 2), (0.0, 3), (1, 4)], "S": [(0,)], "T": [(-0.0,)]}
        )
        query = parse_sgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND T(x);"
        )
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)

    def test_bool_int_float_unification(self):
        """``True == 1 == 1.0`` joins across representations, as in Python."""
        database = Database.from_dict(
            {"R": [(True, 1), (1.0, 2), (2, 3), (2.5, 4)], "S": [(1,), (2.0,)]}
        )
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)

    def test_none_values_join_and_negate(self):
        database = Database.from_dict(
            {
                "R": [(None, 1), (None, None), (1, None), (2, 2)],
                "S": [(None,), (2,)],
                "T": [(None,)],
            }
        )
        query = parse_sgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
        )
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)


class TestMixedTypesAndEmpty:
    def test_mixed_type_columns(self):
        """int/float/str/None in one column: token equality == Python equality."""
        database = Database.from_dict(
            {
                "R": [
                    (1, "a"),
                    (2.5, None),
                    ("s3", 3),
                    (None, "b"),
                    (7, 7.5),
                    ("s3", None),
                    ("1", 1),  # the string "1" must NOT join the int 1
                ],
                "S": [(1,), ("s3",), (None,), (9,)],
                "T": [("a",), (3,), (None,)],
            }
        )
        query = parse_sgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
        )
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)

    def test_empty_relations(self):
        """Empty guard, empty conditional, and a fully empty database."""
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        arities = {"R": 2, "S": 1}
        shapes = [
            {"R": [], "S": [(1,)]},
            {"R": [(1, 2), (3, 4)], "S": []},
            {"R": [], "S": []},
        ]
        for shape in shapes:
            database = Database(
                Relation.from_tuples(name, rows, arity=arities[name])
                for name, rows in shape.items()
            )
            for strategy in each_strategy(query):
                assert_sql_parity(query, database, strategy)

    def test_disjunctive_condition_and_kernel_mode(self):
        """A Boolean guard (CASE translation) stays exact with kernels on."""
        database = Database.from_dict(
            {"R": [(1, 2), (3, 4), (5, 6)], "S": [(1,), (5,)], "T": [(4,)]}
        )
        query = parse_sgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR NOT T(y);"
        )
        for mode in ("off", "on"):
            for strategy in each_strategy(query):
                assert_sql_parity(
                    query, database, strategy, GumboOptions(kernel_mode=mode)
                )


# -- codec contract -----------------------------------------------------------------


class TestCodec:
    def test_scalar_tokens(self):
        assert encode_scalar(None) == "N"
        assert encode_scalar(True) == "i1"
        assert encode_scalar(1) == "i1"
        assert encode_scalar(1.0) == "i1"
        assert encode_scalar(0) == "i0"
        assert encode_scalar(-0.0) == "i0"
        assert encode_scalar(False) == "i0"
        assert encode_scalar(2.5) == "f2.5"
        assert encode_scalar(float("inf")) == "f+inf"
        assert encode_scalar(float("-inf")) == "f-inf"
        assert encode_scalar("x") == "sx"
        assert encode_scalar("1") != encode_scalar(1)

    def test_nan_gets_per_object_tokens(self):
        nan, other = float("nan"), float("nan")
        assert encode_scalar(nan) is None  # identity is the codec's business
        codec = ValueCodec()
        assert codec.encode_value(nan) == codec.encode_value(nan)
        assert codec.encode_value(nan) != codec.encode_value(other)
        assert codec.encode_value(nan).startswith("n")

    def test_unsupported_values_raise(self):
        with pytest.raises(SQLUnsupportedValueError):
            encode_scalar(object())
        with pytest.raises(SQLUnsupportedValueError):
            encode_scalar((1, 2))
        with pytest.raises(SQLUnsupportedValueError):
            encode_scalar("\ud800")  # lone surrogate: sqlite3 rejects it


# -- construction, aliases, on-disk databases ---------------------------------------


class TestConstruction:
    def test_aliases(self):
        for name in ("sql", "sqlite", "sqlite3"):
            backend = make_backend(name)
            assert isinstance(backend, SQLBackend)
            backend.close()

    def test_instance_passthrough_and_conflicts(self):
        backend = SQLBackend()
        assert make_backend(backend) is backend
        assert make_backend(backend, sql_db=None) is backend
        with pytest.raises(ValueError):
            make_backend(backend, sql_db="/tmp/elsewhere.db")
        backend.close()

    def test_sql_db_ignored_for_other_backends(self):
        # gumbo.py always forwards options.sql_db; non-sql names ignore it.
        backend = make_backend("serial", sql_db="/tmp/ignored.db")
        assert isinstance(backend, SimulatedBackend)

    def test_options_thread_backend_and_sql_db(self):
        gumbo = Gumbo(options=GumboOptions(backend="sql", sql_db=None))
        assert isinstance(gumbo.backend, SQLBackend)

    def test_on_disk_database(self, tmp_path):
        """--sql-db keeps the file; scratch tables are dropped per context."""
        path = str(tmp_path / "scratch.db")
        database = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
        query = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);"
        for _ in range(2):  # the file is reusable across runs
            gumbo = Gumbo(options=GumboOptions(backend="sql", sql_db=path))
            result = gumbo.execute(query, database)
            assert result.output().tuples() == {(1, 2)}
            gumbo.backend.close()
        with sqlite3.connect(path) as connection:
            tables = connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            ).fetchall()
        assert tables == []  # dropped on context close; the file survives


# -- interpreted fallback -----------------------------------------------------------


class TestFallback:
    def test_skew_job_interprets(self):
        """Salted jobs report supports_sql() False and run on the engine."""
        rows = [(7, i) for i in range(50)] + [(i + 100, i) for i in range(10)]
        database = Database.from_dict({"R": rows, "S": [(7,), (100,)]})
        specs = parse_bsgf(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);"
        ).semijoin_specs()
        job = SkewAwareMSJJob("salted", specs, heavy_keys=[(7,)], salt_factor=4)
        assert not job.supports_sql()
        engine = MapReduceEngine()
        reference = engine.run_job(job, database)
        backend = SQLBackend(MapReduceEngine())
        try:
            fallback = backend.run_job(job, database)
        finally:
            backend.close()
        assert set(fallback.outputs) == set(reference.outputs)
        for name in reference.outputs:
            assert fallback.outputs[name].tuples() == reference.outputs[name].tuples()
        assert (
            fallback.metrics.reduce_task_durations
            == reference.metrics.reduce_task_durations
        )
        assert fallback.metrics.wall.backend == "sql"

    def test_unencodable_values_fall_back_per_job(self):
        """A row holding an object with no token runs interpreted, exactly."""
        marker = frozenset({1})
        database = Database.from_dict(
            {"R": [(marker, 1), (2, 2)], "S": [(marker,), (2,)]}
        )
        query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        for strategy in each_strategy(query):
            assert_sql_parity(query, database, strategy)
