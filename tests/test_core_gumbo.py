"""Tests for the Gumbo facade (planning + execution + metrics)."""

import pytest

from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.cost.models import GumboCostModel, WangCostModel
from repro.mapreduce.engine import MapReduceEngine
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf, evaluate_sgf
from repro.query.sgf import SGFQuery

from helpers import (
    as_set,
    nested_sgf,
    nested_sgf_text,
    shared_key_query,
    simple_query,
    small_database,
    star_database,
    star_query,
)


@pytest.fixture
def gumbo():
    return Gumbo()


class TestQueryNormalisation:
    def test_accepts_text(self, gumbo):
        sgf = gumbo.as_sgf("Z := SELECT x FROM R(x, y) WHERE S(x);")
        assert isinstance(sgf, SGFQuery)
        assert sgf.output == "Z"

    def test_accepts_bsgf_object(self, gumbo):
        sgf = gumbo.as_sgf(simple_query())
        assert sgf.is_basic()

    def test_accepts_list_of_queries(self, gumbo):
        q1 = parse_bsgf("Z1 := SELECT x FROM R(x, y) WHERE S(x);")
        q2 = parse_bsgf("Z2 := SELECT x FROM R(x, y) WHERE T(y);")
        sgf = gumbo.as_sgf([q1, q2])
        assert sgf.output_names == ("Z1", "Z2")

    def test_accepts_sgf_object(self, gumbo):
        query = nested_sgf()
        assert gumbo.as_sgf(query) is query


class TestExecution:
    @pytest.mark.parametrize("strategy", ["seq", "par", "greedy"])
    def test_bsgf_execution_matches_reference(self, gumbo, strategy):
        db = small_database()
        query = simple_query()
        result = gumbo.execute(query, db, strategy)
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db))

    def test_one_round_execution(self, gumbo):
        db = star_database()
        query = shared_key_query()
        result = gumbo.execute(query, db, "1-round")
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db))
        assert result.metrics.rounds == 1

    def test_text_query_execution(self, gumbo):
        db = small_database()
        result = gumbo.execute(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR U(x);", db
        )
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR U(x);")
        assert as_set(result.output()) == as_set(evaluate_bsgf(query, db))

    def test_nested_sgf_execution(self, gumbo):
        db = small_database()
        query = nested_sgf()
        result = gumbo.execute(query, db, "greedy-sgf")
        reference = evaluate_sgf(query, db)
        assert as_set(result.output()) == as_set(reference[query.output])

    def test_bsgf_strategy_names_map_to_sgf_for_nested_queries(self, gumbo):
        db = small_database()
        result = gumbo.execute(nested_sgf_text(), db, "greedy")
        assert result.strategy == "greedy-sgf"
        result_par = gumbo.execute(nested_sgf_text(), db, "par")
        assert result_par.strategy == "parunit"
        result_seq = gumbo.execute(nested_sgf_text(), db, "seq")
        assert result_seq.strategy == "sequnit"

    def test_flat_query_keeps_bsgf_strategy(self, gumbo):
        db = small_database()
        result = gumbo.execute(simple_query(), db, "greedy")
        assert result.strategy == "greedy"

    def test_outputs_only_contain_roots(self, gumbo):
        db = small_database()
        result = gumbo.execute(nested_sgf(), db)
        assert set(result.outputs) == {"Z3"}
        assert set(result.all_outputs) == {"Z1", "Z2", "Z3"}

    def test_result_metrics_and_summary(self, gumbo):
        db = small_database()
        result = gumbo.execute(simple_query(), db)
        summary = result.summary()
        assert set(summary) == {
            "net_time_s",
            "total_time_s",
            "input_gb",
            "communication_gb",
        }
        assert result.metrics.net_time > 0
        assert result.metrics.total_time >= result.metrics.net_time

    def test_compare_strategies(self, gumbo):
        db = star_database()
        results = gumbo.compare_strategies(star_query(), db, ["seq", "par", "greedy"])
        assert set(results) == {"seq", "par", "greedy"}
        answers = {as_set(r.output()) for r in results.values()}
        assert len(answers) == 1


class TestConfiguration:
    def test_cost_model_by_name(self):
        assert isinstance(Gumbo(cost_model="wang").cost_model, WangCostModel)
        assert isinstance(Gumbo(cost_model="gumbo").cost_model, GumboCostModel)

    def test_cost_model_instance(self):
        model = WangCostModel()
        assert Gumbo(cost_model=model).cost_model is model

    def test_custom_engine_used(self):
        engine = MapReduceEngine()
        gumbo = Gumbo(engine=engine)
        assert gumbo.engine is engine

    def test_plan_only(self):
        gumbo = Gumbo()
        db = star_database()
        program = gumbo.plan(star_query(), db, "par")
        assert len(program) == 5

    def test_options_propagate_to_plan(self):
        db = star_database()
        no_packing = Gumbo(options=GumboOptions(message_packing=False))
        program = no_packing.plan(shared_key_query(), db, "par")
        for job in program.jobs:
            if hasattr(job, "uses_combiner") and job.job_id.startswith("msj"):
                assert not job.uses_combiner()

    def test_docstring_example(self):
        from repro import Database

        db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)], "T": [(4,)]})
        result = Gumbo().execute(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);", db
        )
        assert sorted(result.output().tuples()) == [(1, 2), (3, 4)]
