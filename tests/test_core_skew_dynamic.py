"""Tests for the skew-handling extension and the dynamic re-planning executor."""

import pytest

from repro.core.dynamic import DynamicSGFExecutor
from repro.core.msj import MSJJob
from repro.core.skew import (
    HeavyHitterReport,
    SkewAwareMSJJob,
    detect_heavy_hitters,
    skew_aware_msj,
)
from repro.cost.estimates import StatisticsCatalog
from repro.mapreduce.engine import MapReduceEngine
from repro.model.database import Database
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf, evaluate_sgf
from repro.workloads.queries import database_for, sgf_query

from helpers import as_set, nested_sgf, small_database


def skewed_database(heavy_count=400, light_values=50):
    """A guard relation where the value 7 appears in most tuples' first column."""
    rows = [(7, i) for i in range(heavy_count)]
    rows += [(i % light_values + 100, i) for i in range(light_values)]
    return Database.from_dict(
        {
            "R": rows,
            "S": [(7,)] + [(i + 100,) for i in range(0, light_values, 2)],
        }
    )


def skewed_query():
    return parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")


class TestHeavyHitterDetection:
    def test_detects_dominant_key(self):
        db = skewed_database()
        catalog = StatisticsCatalog(db, sample_size=300)
        report = detect_heavy_hitters(catalog, skewed_query().semijoin_specs())
        assert isinstance(report, HeavyHitterReport)
        assert (7,) in report.heavy_keys

    def test_uniform_data_has_no_heavy_hitters(self):
        db = database_for([skewed_query()], guard_tuples=300, seed=3)
        catalog = StatisticsCatalog(db, sample_size=300)
        report = detect_heavy_hitters(catalog, skewed_query().semijoin_specs())
        assert not report.heavy_keys
        assert not report

    def test_threshold_validation(self):
        db = skewed_database()
        catalog = StatisticsCatalog(db)
        with pytest.raises(ValueError):
            detect_heavy_hitters(catalog, skewed_query().semijoin_specs(), 0.0)

    def test_empty_guard(self):
        db = Database.from_dict({"S": [(1,)]})
        catalog = StatisticsCatalog(db)
        report = detect_heavy_hitters(catalog, skewed_query().semijoin_specs())
        assert report.sampled_keys == 0


class TestSkewAwareMSJ:
    def test_results_identical_to_plain_msj(self):
        db = skewed_database()
        query = skewed_query()
        specs = query.semijoin_specs()
        engine = MapReduceEngine()
        plain = engine.run_job(MSJJob("plain", specs), db)
        salted = engine.run_job(
            SkewAwareMSJJob("salted", specs, heavy_keys=[(7,)], salt_factor=4), db
        )
        for name in plain.outputs:
            assert as_set(plain.outputs[name]) == as_set(salted.outputs[name])
        assert as_set(plain.outputs[specs[0].output]) == as_set(
            evaluate_bsgf(query, db)
        )

    def test_salting_balances_reducer_loads(self):
        db = skewed_database()
        specs = skewed_query().semijoin_specs()
        engine = MapReduceEngine()
        plain_job = MSJJob("plain", specs)
        salted_job = SkewAwareMSJJob("salted", specs, heavy_keys=[(7,)], salt_factor=8)
        plain_job.fixed_reducers = 8
        salted_job.fixed_reducers = 8
        plain = engine.run_job(plain_job, db).metrics
        salted = engine.run_job(salted_job, db).metrics
        # With one heavy key, the plain job's longest reduce task dominates;
        # salting spreads that load over several reducers.
        assert max(salted.reduce_task_durations) < max(plain.reduce_task_durations)
        # Total reduce work stays in the same ballpark (asserts are replicated,
        # which adds a little communication).
        assert sum(salted.reduce_task_durations) == pytest.approx(
            sum(plain.reduce_task_durations), rel=0.25
        )

    def test_salt_factor_one_behaves_like_plain(self):
        specs = skewed_query().semijoin_specs()
        job = SkewAwareMSJJob("salted", specs, heavy_keys=[(7,)], salt_factor=1)
        pairs = list(job.map("R", (7, 1)))
        assert all(not str(key[-1]).startswith("#salt") for key, _ in pairs)

    def test_invalid_salt_factor(self):
        with pytest.raises(ValueError):
            SkewAwareMSJJob("x", skewed_query().semijoin_specs(), [], salt_factor=0)

    def test_skew_aware_msj_helper(self):
        db = skewed_database()
        catalog = StatisticsCatalog(db, sample_size=300)
        job, report = skew_aware_msj("auto", skewed_query().semijoin_specs(), catalog)
        assert (7,) in job.heavy_keys
        assert report.heavy_keys == frozenset(job.heavy_keys)

    def test_engine_net_time_reflects_skew(self):
        """The per-reducer timing model makes skew visible in the reduce makespan."""
        db = skewed_database()
        specs = skewed_query().semijoin_specs()
        engine = MapReduceEngine()
        job = MSJJob("plain", specs)
        job.fixed_reducers = 8
        metrics = engine.run_job(job, db).metrics
        durations = metrics.reduce_task_durations
        assert max(durations) > 2 * (sum(durations) / len(durations))


class TestDynamicExecutor:
    def test_matches_reference_on_nested_query(self):
        query = nested_sgf()
        db = small_database()
        result = DynamicSGFExecutor().execute(query, db)
        reference = evaluate_sgf(query, db)
        for name in query.output_names:
            assert as_set(result.outputs[name]) == as_set(reference[name]), name

    @pytest.mark.parametrize("query_id", ["C1", "C4"])
    def test_matches_reference_on_experiment_queries(self, query_id):
        query = sgf_query(query_id)
        db = database_for(query, guard_tuples=120, selectivity=0.5, seed=9)
        result = DynamicSGFExecutor().execute(query, db)
        reference = evaluate_sgf(query, db)
        for name in query.output_names:
            assert as_set(result.outputs[name]) == as_set(reference[name]), name

    def test_stages_cover_all_subqueries_exactly_once(self):
        query = sgf_query("C4")
        db = database_for(query, guard_tuples=80, selectivity=0.5, seed=9)
        result = DynamicSGFExecutor().execute(query, db)
        evaluated = [name for stage in result.stages for name in stage.subqueries]
        assert sorted(evaluated) == sorted(query.output_names)
        assert len(result.stages) >= 2  # at least one re-planning step

    def test_metrics_aggregate_over_stages(self):
        query = nested_sgf()
        db = small_database()
        result = DynamicSGFExecutor().execute(query, db)
        assert result.metrics.net_time == pytest.approx(
            sum(stage.metrics.net_time for stage in result.stages)
        )
        assert result.metrics.total_time == pytest.approx(
            sum(stage.metrics.total_time for stage in result.stages)
        )

    def test_dynamic_total_time_close_to_static_greedy(self):
        """Dynamic re-planning should not be worse than static GREEDY-SGF by much."""
        from repro.core.gumbo import Gumbo

        query = sgf_query("C4")
        db = database_for(query, guard_tuples=150, selectivity=0.5, seed=10)
        static = Gumbo().execute(query, db, "greedy-sgf").metrics.total_time
        dynamic = DynamicSGFExecutor().execute(query, db).metrics.total_time
        assert dynamic <= 1.5 * static

    def test_output_accessor(self):
        query = nested_sgf()
        db = small_database()
        result = DynamicSGFExecutor().execute(query, db)
        assert result.output().name == query.output
