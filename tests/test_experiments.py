"""Tests for the experiment harness (runner, reporting, per-figure drivers).

The drivers run at a very small workload scale here so the whole file stays
fast; the benchmark suite runs them at the default scale.
"""

import pytest

from repro.experiments import (
    ExperimentResult,
    ExperimentRunner,
    RunRecord,
    averages_by_strategy,
    format_table,
    format_table3,
    records_table,
    relative_table,
    run_ablation,
    run_cost_model_experiment,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure7a,
    run_figure7b,
    run_figure7c,
    run_figure8,
    run_table3,
    selectivity_increases,
)
from repro.workloads.queries import bsgf_query_set, database_for
from repro.workloads.scaling import ScaledEnvironment

TINY = ScaledEnvironment(scale=5e-7)   # 50-tuple guard relations
SMALL = ScaledEnvironment(scale=2e-6)  # 200-tuple guard relations


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(TINY)


class TestRunRecord:
    def test_as_dict_and_relative(self):
        a = RunRecord("Q", "SEQ", 100.0, 1000.0, 10.0, 20.0, 4, 4)
        b = RunRecord("Q", "PAR", 50.0, 2000.0, 20.0, 30.0, 5, 2)
        data = b.as_dict()
        assert data["strategy"] == "PAR"
        relative = b.relative_to(a)
        assert relative["net_time_pct"] == pytest.approx(50.0)
        assert relative["total_time_pct"] == pytest.approx(200.0)

    def test_relative_to_handles_zero_baseline(self):
        a = RunRecord("Q", "SEQ", 0.0, 0.0, 0.0, 0.0, 1, 1)
        b = RunRecord("Q", "PAR", 5.0, 5.0, 5.0, 5.0, 1, 1)
        assert b.relative_to(a)["net_time_pct"] == 0.0


class TestRunner:
    def test_run_gumbo_strategy(self, runner):
        queries = bsgf_query_set("A3")
        db = database_for(queries, guard_tuples=50, seed=1)
        record = runner.run_gumbo("A3", queries, "greedy", db)
        assert record.strategy == "GREEDY"
        assert record.net_time > 0
        assert record.total_time >= record.net_time

    def test_run_baseline_strategy(self, runner):
        queries = bsgf_query_set("A3")
        db = database_for(queries, guard_tuples=50, seed=1)
        record = runner.run_baseline("A3", queries, "hpars", db)
        assert record.strategy == "HPARS"
        assert record.jobs == 5

    def test_run_strategy_dispatches(self, runner):
        queries = bsgf_query_set("A3")
        db = database_for(queries, guard_tuples=50, seed=1)
        assert runner.run_strategy("A3", queries, "ppar", db).strategy == "PPAR"
        assert runner.run_strategy("A3", queries, "seq", db).strategy == "SEQ"

    def test_run_matrix(self, runner):
        queries = bsgf_query_set("A3")
        db = database_for(queries, guard_tuples=50, seed=1)
        records = runner.run_matrix("A3", queries, ["seq", "par"], db)
        assert [r.strategy for r in records] == ["SEQ", "PAR"]

    def test_gb_metrics_reported_at_paper_scale(self, runner):
        queries = bsgf_query_set("A1")
        db = database_for(queries, guard_tuples=50, seed=1)
        record = runner.run_gumbo("A1", queries, "par", db)
        # 50-tuple relations are a few KB; scaled up they must land in the
        # paper's gigabyte range (Figure 3 reports 12-100 GB).
        assert 1.0 < record.input_gb < 500.0


class TestReporting:
    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_records_and_relative_tables(self):
        records = [
            RunRecord("Q", "SEQ", 100.0, 1000.0, 10.0, 20.0, 4, 4),
            RunRecord("Q", "PAR", 50.0, 2000.0, 20.0, 30.0, 5, 2),
        ]
        absolute = records_table(records, title="abs")
        relative = relative_table(records, "seq", title="rel")
        assert "SEQ" in absolute and "PAR" in absolute
        assert "200%" in relative

    def test_averages_by_strategy(self):
        records = [
            RunRecord("Q1", "SEQ", 100.0, 100.0, 1.0, 1.0, 1, 1),
            RunRecord("Q1", "PAR", 50.0, 200.0, 2.0, 2.0, 1, 1),
            RunRecord("Q2", "SEQ", 10.0, 10.0, 1.0, 1.0, 1, 1),
            RunRecord("Q2", "PAR", 2.5, 20.0, 2.0, 2.0, 1, 1),
        ]
        averages = averages_by_strategy(records, "seq")
        assert averages["PAR"]["net_time_pct"] == pytest.approx((50 + 25) / 2)

    def test_experiment_result_helpers(self):
        result = ExperimentResult("X", "desc", baseline_strategy="seq")
        result.add(RunRecord("Q", "SEQ", 10.0, 10.0, 1.0, 1.0, 1, 1))
        result.add(RunRecord("Q", "PAR", 5.0, 20.0, 2.0, 2.0, 1, 1))
        assert result.record("Q", "par").net_time == 5.0
        assert len(result.by_query("Q")) == 2
        assert len(result.by_strategy("seq")) == 1
        assert "values relative to SEQ" in result.format()
        with pytest.raises(KeyError):
            result.record("Q", "missing")


class TestFigureDrivers:
    """Each driver runs on a tiny workload and must exhibit the paper's shape."""

    def test_figure3_shape(self):
        result = run_figure3(
            TINY,
            query_ids=("A1",),
            strategies=("seq", "par", "greedy"),
            include_one_round=False,
        )
        seq = result.record("A1", "seq")
        par = result.record("A1", "par")
        greedy = result.record("A1", "greedy")
        assert par.net_time < seq.net_time
        assert par.total_time > seq.total_time
        assert greedy.total_time <= par.total_time
        assert seq.rounds > par.rounds

    def test_figure3_includes_one_round_only_when_applicable(self):
        result = run_figure3(
            TINY, query_ids=("A1", "A3"), strategies=("seq",), include_one_round=True
        )
        strategies_a1 = {r.strategy for r in result.by_query("A1")}
        strategies_a3 = {r.strategy for r in result.by_query("A3")}
        assert "1-ROUND" not in strategies_a1
        assert "1-ROUND" in strategies_a3

    def test_figure4_shape(self):
        result = run_figure4(
            TINY,
            query_ids=("B1",),
            strategies=("seq", "par", "greedy"),
            include_one_round=False,
        )
        seq = result.record("B1", "seq")
        par = result.record("B1", "par")
        greedy = result.record("B1", "greedy")
        # B1's deep sequential plan: parallel strategies slash the net time.
        assert par.net_time < 0.6 * seq.net_time
        assert greedy.net_time < 0.6 * seq.net_time
        assert greedy.total_time < par.total_time

    def test_figure5_shape(self):
        result = run_figure5(TINY, query_ids=("C1",))
        sequnit = result.record("C1", "sequnit")
        parunit = result.record("C1", "parunit")
        greedy = result.record("C1", "greedy-sgf")
        assert parunit.net_time < sequnit.net_time
        assert greedy.total_time <= sequnit.total_time

    def test_figure7a_scaling_shape(self):
        result = run_figure7a(
            TINY,
            data_sizes=(200_000_000, 800_000_000),
            strategies=("seq", "1-round"),
        )
        small_seq = result.record("200M", "seq")
        large_seq = result.record("800M", "seq")
        assert large_seq.total_time > small_seq.total_time
        one_round_large = result.record("800M", "1-round")
        assert one_round_large.net_time < large_seq.net_time

    def test_figure7b_more_nodes_do_not_hurt(self):
        result = run_figure7b(
            TINY, nodes=(5, 20), data_size=400_000_000, strategies=("par",)
        )
        five = result.record("5nodes", "par")
        twenty = result.record("20nodes", "par")
        assert twenty.net_time <= five.net_time + 1e-6

    def test_figure7c_combined_scaling(self):
        result = run_figure7c(
            TINY,
            combined=((200_000_000, 5), (400_000_000, 10)),
            strategies=("greedy",),
        )
        assert len(result.records) == 2
        small = result.record("200M/5", "greedy")
        large = result.record("400M/10", "greedy")
        # Total work grows with the data...
        assert large.total_time > small.total_time
        # ...but scaling nodes along keeps the net time roughly flat (within 2x).
        assert large.net_time < 2.0 * small.net_time

    def test_figure8_query_size_shape(self):
        result = run_figure8(TINY, atom_counts=(2, 8), strategies=("seq", "greedy"))
        seq_growth = (
            result.record("8atoms", "seq").net_time
            / result.record("2atoms", "seq").net_time
        )
        greedy_growth = (
            result.record("8atoms", "greedy").net_time
            / result.record("2atoms", "greedy").net_time
        )
        assert seq_growth > greedy_growth

    def test_table3_selectivity(self):
        result = run_table3(
            TINY,
            query_ids=("A3",),
            strategies=("seq", "greedy"),
            selectivities=(0.1, 0.9),
        )
        rows = selectivity_increases(result)
        assert {row["strategy"] for row in rows} == {"SEQ", "GREEDY"}
        text = format_table3(result)
        assert "selectivity" in text

    def test_cost_model_experiment(self):
        comparison = run_cost_model_experiment(
            SMALL,
            include_ranking=False,
            include_estimation_error=True,
            groups=2,
            keys=4,
        )
        errors = comparison.estimation_error
        assert set(errors) == {"gumbo", "wang"}
        # The per-partition model must estimate the stress job at least as
        # accurately as the aggregate model.
        assert abs(errors["gumbo"]) <= abs(errors["wang"]) + 1e-9
        assert "Cost model" in comparison.format()

    def test_ablation_packing_reduces_communication(self):
        result = run_ablation(TINY, query_ids=("A3",))
        packed = result.record("A3", "GREEDY[ALL-ON]")
        unpacked = result.record("A3", "GREEDY[NO-PACKING]")
        assert packed.communication_gb < unpacked.communication_gb
        no_ref = result.record("A3", "GREEDY[NO-TUPLE-REF]")
        assert packed.communication_gb <= no_ref.communication_gb
