"""Backend parity: the parallel runtime must be indistinguishable from the
serial simulator in everything except measured wall-clock time.

Every strategy (SEQ / PAR / GREEDY / 1-ROUND and the SGF variants), the
dynamic re-planning executor and the skew-aware MSJ path are run on both
backends over generated workloads, asserting identical output relations and
identical simulated metrics.
"""

from __future__ import annotations

import pytest

from repro.core.dynamic import DynamicSGFExecutor
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.core.skew import SkewAwareMSJJob, detect_heavy_hitters
from repro.cost.estimates import StatisticsCatalog
from repro.exec import (
    ExecutionBackend,
    ParallelBackend,
    SimulatedBackend,
    make_backend,
    map_task_chunks,
    partition_index,
    stable_hash,
)
from repro.mapreduce.engine import MapReduceEngine, _stable_hash
from repro.model.database import Database
from repro.query.parser import parse_bsgf
from repro.workloads.queries import bsgf_query_set, database_for, sgf_query

#: Worker count used throughout; small so pools stay cheap on tiny CI boxes.
WORKERS = 2


@pytest.fixture(scope="module")
def parallel_backend():
    """One shared pool for the whole module (startup amortised over tests)."""
    backend = ParallelBackend(MapReduceEngine(), workers=WORKERS)
    yield backend
    backend.close()


@pytest.fixture(scope="module")
def serial_backend():
    return SimulatedBackend(MapReduceEngine())


def _assert_results_match(serial, parallel):
    """Outputs and every simulated metric must be identical."""
    assert set(serial.all_outputs) == set(parallel.all_outputs)
    for name in serial.all_outputs:
        assert (
            serial.all_outputs[name].tuples() == parallel.all_outputs[name].tuples()
        ), name
    _assert_metrics_match(serial.metrics, parallel.metrics)


def _assert_metrics_match(serial_metrics, parallel_metrics):
    assert serial_metrics.summary() == parallel_metrics.summary()
    assert serial_metrics.level_net_times == parallel_metrics.level_net_times
    assert set(serial_metrics.job_metrics) == set(parallel_metrics.job_metrics)
    for job_id, serial_job in serial_metrics.job_metrics.items():
        parallel_job = parallel_metrics.job_metrics[job_id]
        assert serial_job.reducers == parallel_job.reducers, job_id
        assert serial_job.mappers == parallel_job.mappers, job_id
        assert serial_job.intermediate_mb == parallel_job.intermediate_mb, job_id
        assert serial_job.output_records == parallel_job.output_records, job_id
        assert serial_job.map_task_durations == parallel_job.map_task_durations, job_id
        assert (
            serial_job.reduce_task_durations == parallel_job.reduce_task_durations
        ), job_id


class TestPartitionHelpers:
    def test_stable_hash_matches_engine_alias(self):
        for key in ((1, 2), ("a",), (None, "x", 3)):
            assert stable_hash(key) == _stable_hash(key)

    def test_partition_index_in_range_and_deterministic(self):
        keys = [(i, chr(65 + i % 26)) for i in range(50)]
        for key in keys:
            index = partition_index(key, 7)
            assert 0 <= index < 7
            assert index == partition_index(key, 7)
        with pytest.raises(ValueError):
            partition_index((1,), 0)

    def test_map_task_chunks_cover_rows_exactly(self):
        rows = [(i,) for i in range(17)]
        chunks = map_task_chunks(rows, 5)
        assert len(chunks) == 5
        assert sorted(row for chunk in chunks for row in chunk) == rows
        # One (empty) chunk even with no rows.
        assert map_task_chunks([], 3) == [[]]
        with pytest.raises(ValueError):
            map_task_chunks(rows, 0)


class TestMakeBackend:
    def test_by_name_and_alias(self):
        assert isinstance(make_backend("serial"), SimulatedBackend)
        assert isinstance(make_backend("simulated"), SimulatedBackend)
        assert isinstance(make_backend(None), SimulatedBackend)
        parallel = make_backend("multiprocessing", workers=1)
        assert isinstance(parallel, ParallelBackend)
        parallel.close()

    def test_instance_passthrough(self, parallel_backend):
        assert make_backend(parallel_backend) is parallel_backend

    def test_instance_conflicts_rejected(self, parallel_backend):
        with pytest.raises(ValueError):
            make_backend(parallel_backend, engine=MapReduceEngine())
        with pytest.raises(ValueError):
            make_backend(parallel_backend, workers=WORKERS + 1)
        with pytest.raises(ValueError):
            Gumbo(backend=parallel_backend, workers=WORKERS + 1)
        # Matching values pass straight through.
        assert make_backend(parallel_backend, workers=WORKERS) is parallel_backend
        assert (
            make_backend(parallel_backend, engine=parallel_backend.engine)
            is parallel_backend
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_backend("hadoop")

    def test_context_manager_closes_pool(self):
        with ParallelBackend(workers=1) as backend:
            assert isinstance(backend, ExecutionBackend)
        assert backend._pool is None

    def test_options_thread_backend_selection(self):
        options = GumboOptions(backend="parallel", workers=1)
        gumbo = Gumbo(options=options)
        assert isinstance(gumbo.backend, ParallelBackend)
        assert gumbo.backend.workers == 1
        gumbo.backend.close()

    def test_gumbo_argument_overrides_options(self):
        gumbo = Gumbo(options=GumboOptions(backend="parallel"), backend="serial")
        assert isinstance(gumbo.backend, SimulatedBackend)

    def test_gumbo_context_manager_releases_pool(self):
        with Gumbo(backend="parallel", workers=1) as gumbo:
            database = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
            result = gumbo.execute(
                "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);", database
            )
            assert result.output().tuples() == {(1, 2)}
            assert gumbo.backend._pool is not None
        assert gumbo.backend._pool is None


class TestBSGFStrategyParity:
    @pytest.mark.parametrize("strategy", ["seq", "par", "greedy"])
    @pytest.mark.parametrize("query_id", ["A1", "B1"])
    def test_generated_workloads(
        self, strategy, query_id, serial_backend, parallel_backend
    ):
        queries = bsgf_query_set(query_id)
        database = database_for(queries, guard_tuples=250, selectivity=0.5, seed=3)
        serial = Gumbo(backend=serial_backend).execute(queries, database, strategy)
        parallel = Gumbo(backend=parallel_backend).execute(queries, database, strategy)
        _assert_results_match(serial, parallel)
        assert parallel.metrics.backend == "parallel"
        assert parallel.metrics.wall_elapsed_s > 0

    def test_one_round(self, serial_backend, parallel_backend):
        # A3's conditionals share the guard's join key, so 1-ROUND applies.
        queries = bsgf_query_set("A3")
        database = database_for(queries, guard_tuples=250, selectivity=0.5, seed=3)
        serial = Gumbo(backend=serial_backend).execute(queries, database, "1-round")
        parallel = Gumbo(backend=parallel_backend).execute(queries, database, "1-round")
        _assert_results_match(serial, parallel)


class TestSGFStrategyParity:
    @pytest.mark.parametrize("strategy", ["sequnit", "parunit", "greedy-sgf"])
    def test_nested_query(self, strategy, serial_backend, parallel_backend):
        query = sgf_query("C1")
        database = database_for(query, guard_tuples=250, selectivity=0.5, seed=7)
        serial = Gumbo(backend=serial_backend).execute(query, database, strategy)
        parallel = Gumbo(backend=parallel_backend).execute(query, database, strategy)
        _assert_results_match(serial, parallel)

    def test_dynamic_executor(self, serial_backend, parallel_backend):
        query = sgf_query("C2")
        database = database_for(query, guard_tuples=250, selectivity=0.5, seed=11)
        serial = DynamicSGFExecutor(backend=serial_backend).execute(query, database)
        parallel = DynamicSGFExecutor(backend=parallel_backend).execute(query, database)
        assert set(serial.outputs) == set(parallel.outputs)
        for name in serial.outputs:
            assert serial.outputs[name].tuples() == parallel.outputs[name].tuples()
        assert len(serial.stages) == len(parallel.stages)
        _assert_metrics_match(serial.metrics, parallel.metrics)


class TestSkewPathParity:
    def test_skew_aware_msj_job(self, serial_backend, parallel_backend):
        # A heavily skewed guard: most rows share join key 1.
        rows = [(1, i) for i in range(120)] + [(i, i) for i in range(2, 30)]
        database = Database.from_dict({"R": rows, "S": [(1,), (5,), (7,)]})
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        specs = query.semijoin_specs()
        catalog = StatisticsCatalog(database, sample_size=200)
        report = detect_heavy_hitters(catalog, specs)
        assert report.heavy_keys  # the workload really is skewed
        job = SkewAwareMSJJob("skew-msj", specs, report.heavy_keys, salt_factor=4)
        serial = serial_backend.run_job(job, database)
        parallel = parallel_backend.run_job(job, database)
        assert set(serial.outputs) == set(parallel.outputs)
        for name in serial.outputs:
            assert serial.outputs[name].tuples() == parallel.outputs[name].tuples()
        assert serial.metrics.reducers == parallel.metrics.reducers
        assert (
            serial.metrics.reduce_task_durations
            == parallel.metrics.reduce_task_durations
        )
        assert parallel.metrics.wall is not None
        assert parallel.metrics.wall.backend == "parallel"
        assert parallel.metrics.wall.workers == WORKERS
        assert parallel.metrics.wall.wave_count >= 2  # map + reduce


class TestWallClockMetrics:
    def test_waves_recorded_per_phase(self, parallel_backend):
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=100, selectivity=0.5, seed=1)
        result = Gumbo(backend=parallel_backend).execute(queries, database, "par")
        walls = [m.wall for m in result.metrics.job_metrics.values()]
        assert all(wall is not None for wall in walls)
        phases = {wave.phase for wall in walls for wave in wall.waves}
        assert phases <= {"map", "reduce"}
        assert "map" in phases
        for wall in walls:
            assert wall.elapsed_s >= wall.map_elapsed_s + wall.reduce_elapsed_s - 1e-9
        wall_summary = result.metrics.wall_summary()
        assert wall_summary["backend"] == "parallel"
        assert wall_summary["wall_clock_s"] > 0

    def test_serial_backend_records_wall_clock(self, serial_backend):
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=100, selectivity=0.5, seed=1)
        result = Gumbo(backend=serial_backend).execute(queries, database, "seq")
        assert result.metrics.backend == "serial"
        assert result.metrics.wall_elapsed_s > 0
        # summary() stays purely simulated, so cross-backend comparisons hold.
        assert set(result.summary()) == {
            "net_time_s",
            "total_time_s",
            "input_gb",
            "communication_gb",
        }
