"""Tests for the serving layer: fingerprints, plan cache, concurrent service."""

import pytest

from repro.core.gumbo import Gumbo
from repro.model.database import Database
from repro.query.parser import parse_sgf
from repro.query.reference import evaluate_sgf
from repro.service import LRUCache, QueryService, query_fingerprint
from repro.workloads.queries import database_for, workload_query

from helpers import small_database, star_database

STAR_QUERY = (
    "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
    "WHERE S(x) AND T(y) AND U(z) AND V(w);"
)
SIMPLE_QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);"
NESTED_QUERY = (
    "M := SELECT (x) FROM R(x, y) WHERE S(x);"
    "Z := SELECT (x, y) FROM R(x, y) WHERE M(x) AND NOT T(y);"
)


class TestLRUCache:
    def test_hit_miss_and_eviction(self):
        cache = LRUCache(2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b", the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3
        assert cache.stats.misses == 2

    def test_zero_capacity_disables_caching(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_counts_invalidation(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert cache.stats.invalidations == 1
        assert len(cache) == 0

    def test_hit_rate(self):
        cache = LRUCache(4)
        assert cache.stats.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.stats.hit_rate == pytest.approx(0.5)


class TestFingerprint:
    def test_whitespace_and_case_insensitive(self):
        db = small_database()
        spaced = parse_sgf("Z := SELECT (x, y)   FROM R(x, y)\n WHERE S(x);")
        tight = parse_sgf("Z := select (x,y) from R(x,y) where S(x);")
        assert query_fingerprint(spaced, db) == query_fingerprint(tight, db)

    def test_different_queries_differ(self):
        db = small_database()
        a = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
        b = parse_sgf("Z := SELECT (y) FROM R(x, y) WHERE S(x);")
        assert query_fingerprint(a, db) != query_fingerprint(b, db)

    def test_schema_change_differs(self):
        query = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
        db = small_database()
        other = Database.from_dict({"R": [(1, 2)], "S": [(1, 9)]})  # S arity 2
        assert query_fingerprint(query, db) != query_fingerprint(query, other)

    def test_data_refresh_keeps_fingerprint(self):
        """Pure data changes are handled by invalidation, not the fingerprint."""
        query = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
        db = small_database()
        before = query_fingerprint(query, db)
        db["S"].add((77,))
        assert query_fingerprint(query, db) == before


class TestPlanCache:
    def test_hit_then_miss_accounting(self):
        with QueryService(small_database()) as service:
            first = service.execute(SIMPLE_QUERY)
            second = service.execute(SIMPLE_QUERY)
            assert not first.plan_cached
            assert second.plan_cached
            stats = service.stats()
            assert stats.plan_cache.hits == 1
            assert stats.plan_cache.misses == 1
            assert stats.queries_served == 2

    def test_equivalent_text_shares_plan(self):
        with QueryService(small_database()) as service:
            service.execute("Z := SELECT (x, y) FROM R(x, y) WHERE S(x) OR T(y);")
            res = service.execute("Z := select (x,y) from R(x,y) where S(x) or T(y);")
            assert res.plan_cached

    def test_requested_strategy_is_part_of_the_key(self):
        with QueryService(small_database()) as service:
            auto = service.execute(SIMPLE_QUERY, "auto")
            forced = service.execute(SIMPLE_QUERY, auto.strategy)
            assert not forced.plan_cached  # "auto" and the winner do not collide
            again = service.execute(SIMPLE_QUERY, "auto")
            assert again.plan_cached

    def test_eviction_with_tiny_cache(self):
        queries = [
            "Z := SELECT (x) FROM R(x, y) WHERE S(x);",
            "Z := SELECT (y) FROM R(x, y) WHERE S(x);",
        ]
        with QueryService(small_database(), plan_cache_size=1) as service:
            service.execute(queries[0])
            service.execute(queries[1])  # evicts queries[0]
            res = service.execute(queries[0])
            assert not res.plan_cached
            assert service.stats().plan_cache.evictions >= 1

    def test_cacheless_service_still_serves(self):
        with QueryService(small_database(), plan_cache_size=0) as service:
            first = service.execute(SIMPLE_QUERY)
            second = service.execute(SIMPLE_QUERY)
            assert not first.plan_cached and not second.plan_cached
            assert sorted(second.output().tuples()) == sorted(
                evaluate_sgf(parse_sgf(SIMPLE_QUERY), service.database)["Z"].tuples()
            )


class TestInvalidation:
    def test_add_tuples_invalidates_and_changes_answers(self):
        db = small_database()
        with QueryService(db) as service:
            before = service.execute(SIMPLE_QUERY)
            assert (3, 4) in before.output().tuples()  # via T(4)
            assert (7, 8) not in before.output().tuples()
            service.add_tuples("S", [(7,)])
            after = service.execute(SIMPLE_QUERY)
            assert not after.plan_cached  # cache was dropped
            assert (7, 8) in after.output().tuples()
            stats = service.stats()
            assert stats.database_version == 1
            assert stats.plan_cache.invalidations == 1
            assert stats.statistics_rebuilds == 2

    def test_mutate_routes_through_invalidate(self):
        with QueryService(small_database()) as service:
            service.execute(SIMPLE_QUERY)
            service.mutate(lambda db: db["S"].add((99,)))
            assert service.database_version == 1
            assert not service.execute(SIMPLE_QUERY).plan_cached

    def test_replace_database(self):
        with QueryService(small_database()) as service:
            service.execute(STAR_QUERY.replace("AND U(z) AND V(w)", ""))
            service.replace_database(star_database())
            result = service.execute(STAR_QUERY)
            expected = evaluate_sgf(parse_sgf(STAR_QUERY), star_database())
            assert result.output().tuples() == expected["Z"].tuples()

    def test_explicit_invalidate_without_mutation(self):
        with QueryService(small_database()) as service:
            service.execute(SIMPLE_QUERY)
            dropped = service.invalidate()
            assert dropped == 1
            assert not service.execute(SIMPLE_QUERY).plan_cached


class TestConcurrentService:
    def test_concurrent_results_match_serial_gumbo(self):
        """Many clients, mixed repeated queries: tuples equal serial execution."""
        queries = [
            workload_query("A1"),
            workload_query("A3"),
            workload_query("C1"),
        ]
        databases = {
            query.name: database_for(query, guard_tuples=120, seed=3)
            for query in queries
        }
        for query in queries:
            db = databases[query.name]
            reference = Gumbo().execute(query, db, "greedy")
            serial = {
                name: relation.tuples()
                for name, relation in reference.all_outputs.items()
            }
            with QueryService(db, max_workers=8) as service:
                futures = service.submit_many([query] * 12)
                for future in futures:
                    result = future.result(timeout=120)
                    got = {
                        name: relation.tuples()
                        for name, relation in result.result.all_outputs.items()
                    }
                    assert got == serial, f"{query.name} diverged under concurrency"
                stats = service.stats()
                assert stats.queries_served == 12
                # One miss (the first request), hits for every later request.
                assert stats.plan_cache.misses == 1
                assert stats.plan_cache.hits == 11

    def test_concurrent_mixed_queries_plan_once_each(self):
        db = small_database()
        texts = [
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);",
            "Z := SELECT (x, y) FROM R(x, y) WHERE T(y);",
            "Z := SELECT (x) FROM R(x, y) WHERE S(x) AND T(y);",
        ]
        with QueryService(db, max_workers=6) as service:
            batch = service.execute_many(texts * 5)
            assert len(batch.results) == 15
            assert service.stats().plan_cache.misses == len(texts)
            assert batch.plan_cache_hits == 15 - len(texts)
            assert batch.throughput_qps > 0
            summary = batch.summary()
            assert summary["queries"] == 15
        for text, result in zip(texts * 5, batch.results):
            expected = evaluate_sgf(parse_sgf(text), db)["Z"].tuples()
            assert result.output().tuples() == expected

    def test_shared_estimator_not_polluted_across_queries(self):
        """Planning one query must not skew AUTO's costs for a later one.

        Both queries output 'Z' (so their planning-time intermediate names
        collide); the first runs over a large relation, the second over a
        tiny one.  The service's cached-statistics AUTO choice for the
        second query must match a fresh Gumbo's choice — costs included.
        """
        db = Database.from_dict(
            {
                "R": [(i, i % 97) for i in range(5000)],
                "S": [(i,) for i in range(0, 5000, 2)],
                "S2": [(i,) for i in range(0, 97, 3)],
                "T": [(1, 2)],
                "U": [(1,)],
                "U2": [(2,)],
            }
        )
        big = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND S2(y);"
        small = "Z := SELECT (x, y) FROM T(x, y) WHERE U(x) AND U2(y);"
        fresh = Gumbo().choose(small, db)
        with QueryService(db) as service:
            service.execute(big)  # registers 'Z'/'Z__*' estimates while planning
            served = service.execute(small)
            assert served.strategy == fresh.strategy
            assert served.result.choice is not None
            assert served.result.choice.costs == pytest.approx(fresh.costs)

    def test_service_default_auto_reports_winner(self):
        with QueryService(star_database()) as service:
            result = service.execute(STAR_QUERY)
            assert result.requested_strategy == "auto"
            assert result.strategy != "auto"
            assert result.result.choice is not None


class TestServiceResultSurface:
    def test_metrics_and_timings(self):
        with QueryService(small_database()) as service:
            result = service.execute(SIMPLE_QUERY)
            assert result.plan_s >= 0.0
            assert result.exec_s >= 0.0
            assert result.total_s == pytest.approx(result.plan_s + result.exec_s)
            assert result.metrics.total_time > 0
            assert result.fingerprint
            assert "Z" in result.outputs

    def test_stats_as_dict_shape(self):
        with QueryService(small_database()) as service:
            service.execute(SIMPLE_QUERY)
            payload = service.stats().as_dict()
            assert payload["queries_served"] == 1
            assert 0.0 <= payload["plan_cache"]["hit_rate"] <= 1.0


class TestIncrementalServing:
    def test_materialize_registers_and_serves_result(self):
        with QueryService(small_database()) as service:
            first = service.materialize(SIMPLE_QUERY)
            assert not first.plan_cached  # the one cold planning miss
            hit = service.execute(SIMPLE_QUERY)
            assert hit.plan_cached
            assert hit.result.output().tuples() == first.result.output().tuples()
            stats = service.stats()
            assert stats.materialized_results == 1
            assert stats.materialized_hits == 1

    def test_materialize_twice_serves_from_first(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            again = service.materialize(SIMPLE_QUERY)
            assert again.plan_cached
            assert service.stats().materialized_results == 1

    def test_incremental_add_tuples_refreshes_instead_of_invalidating(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            version = service.database_version
            deltas = service.add_tuples("S", [(7,)], incremental=True)
            assert len(deltas) == 1
            assert deltas[0].added == {"Z": frozenset({(7, 8)})}
            # No invalidation: version unchanged, plans and stats kept.
            assert service.database_version == version
            assert len(service.plan_cache) == 1
            served = service.execute(SIMPLE_QUERY)
            expected = evaluate_sgf(parse_sgf(SIMPLE_QUERY), service.database)
            assert served.result.output().tuples() == expected["Z"].tuples()

    def test_incremental_refresh_matches_negation_removal(self):
        with QueryService(small_database()) as service:
            service.materialize(NESTED_QUERY)
            # (1, 2) is in Z (M(1) holds, NOT T(2)); inserting (2,) into T
            # must *remove* it incrementally.
            deltas = service.add_tuples("T", [(2,)], incremental=True)
            assert any((1, 2) in d.removed.get("Z", ()) for d in deltas)
            served = service.execute(NESTED_QUERY)
            expected = evaluate_sgf(parse_sgf(NESTED_QUERY), service.database)
            assert served.result.output().tuples() == expected["Z"].tuples()

    def test_incremental_updates_catalog_statistics_in_place(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            before = service.stats().statistics_rebuilds
            from repro.model.atoms import Atom
            from repro.model.terms import Variable

            atom = Atom("S", (Variable("x"),))
            old_count = service.estimator().catalog.atom_count(atom)
            service.add_tuples("S", [(100,), (101,)], incremental=True)
            new_count = service.estimator().catalog.atom_count(atom)
            assert new_count == old_count + 2
            # No statistics rebuild happened: the catalog was patched.
            assert service.stats().statistics_rebuilds == before

    def test_served_materialized_result_is_isolated_snapshot(self):
        with QueryService(small_database()) as service:
            served = service.materialize(SIMPLE_QUERY)
            served.result.output().add((99, 99))  # caller mutates its copy
            again = service.execute(SIMPLE_QUERY)
            assert (99, 99) not in again.result.output()

    def test_invalidate_drops_materializations(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            service.invalidate()
            assert service.stats().materialized_results == 0
            # Serving still works (re-plans from scratch).
            result = service.execute(SIMPLE_QUERY)
            assert "Z" in result.outputs

    def test_non_incremental_add_tuples_still_invalidates(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            version = service.database_version
            assert service.add_tuples("S", [(3,)]) is None
            assert service.database_version == version + 1
            assert service.stats().materialized_results == 0


class TestMetricsHistory:
    def test_history_accumulates_per_fingerprint(self):
        with QueryService(small_database()) as service:
            service.execute(SIMPLE_QUERY)
            service.execute(SIMPLE_QUERY)
            service.execute(NESTED_QUERY)
            history = service.metrics_history()
            assert len(history) == 2
            counts = sorted(h.queries for h in history.values())
            assert counts == [1, 2]
            assert all(h.plan_s_total >= 0.0 for h in history.values())

    def test_history_preserved_across_invalidations(self):
        with QueryService(small_database()) as service:
            service.execute(SIMPLE_QUERY)
            before = service.metrics_history()
            before_hits = service.plan_cache.stats.hits
            before_misses = service.plan_cache.stats.misses
            service.mutate(lambda db: db["S"].add((3,)))
            service.add_tuples("T", [(2,)])
            service.invalidate()
            history = service.metrics_history()
            assert {k: v.as_dict() for k, v in history.items()} == {
                k: v.as_dict() for k, v in before.items()
            }
            # The plan cache's cumulative counters also survive clears.
            assert service.plan_cache.stats.hits == before_hits
            assert service.plan_cache.stats.misses == before_misses
            # And serving after the invalidations extends the same history.
            service.execute(SIMPLE_QUERY)
            fingerprint = next(iter(before))
            assert service.metrics_history()[fingerprint].queries == 2

    def test_history_counts_materialized_hits(self):
        with QueryService(small_database()) as service:
            first = service.materialize(SIMPLE_QUERY)
            service.execute(SIMPLE_QUERY)
            history = service.metrics_history()[first.fingerprint]
            assert history.queries == 2
            # The initial materialize executed for real; the second call hit.
            assert history.materialized_hits == 1

    def test_stats_as_dict_includes_incremental_counters(self):
        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            service.add_tuples("S", [(3,)], incremental=True)
            payload = service.stats().as_dict()
            assert payload["materialized_results"] == 1
            assert payload["incremental_refreshes"] == 1
            assert payload["metrics_histories"] == 1


class TestIncrementalFailureSafety:
    def test_arity_mismatch_rejected_before_any_mutation(self):
        from repro.model.relation import SchemaError

        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            before = len(service.database["S"])
            with pytest.raises(SchemaError):
                service.add_tuples("S", [(1,), (2, 3)], incremental=True)
            assert len(service.database["S"]) == before
            # Nothing was invalidated either: the batch never started.
            assert service.stats().materialized_results == 1

    def test_insert_into_output_rejected_without_invalidation(self):
        from repro.incremental import IncrementalError

        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)
            with pytest.raises(IncrementalError):
                service.add_tuples("Z", [(9, 9)], incremental=True)
            assert service.stats().materialized_results == 1

    def test_crash_mid_refresh_invalidates_everything(self, monkeypatch):
        import repro.service.service as service_module

        with QueryService(small_database()) as service:
            service.materialize(SIMPLE_QUERY)

            def boom(*args, **kwargs):
                raise RuntimeError("refresh crashed")

            monkeypatch.setattr(service_module, "refresh_all", boom)
            with pytest.raises(RuntimeError):
                service.add_tuples("S", [(3,)], incremental=True)
            # Fail safe: no stale materializations or plans survive.
            stats = service.stats()
            assert stats.materialized_results == 0
            assert len(service.plan_cache) == 0
            monkeypatch.undo()
            # Serving still works and reflects the database as it stands.
            result = service.execute(SIMPLE_QUERY)
            expected = evaluate_sgf(parse_sgf(SIMPLE_QUERY), service.database)
            assert result.result.output().tuples() == expected["Z"].tuples()

    def test_concurrent_materialize_and_incremental_batches(self):
        """materialize() racing incremental batches never serves stale rows."""
        from concurrent.futures import ThreadPoolExecutor

        with QueryService(small_database()) as service:
            def mutate(start):
                for value in range(start, start + 5):
                    service.add_tuples("S", [(value,)], incremental=True)

            def build():
                return service.materialize(SIMPLE_QUERY)

            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [pool.submit(mutate, 100), pool.submit(mutate, 200)]
                builds = [pool.submit(build) for _ in range(3)]
                for future in futures + builds:
                    future.result()
            # Whatever interleaving happened, the final served answer must
            # equal the reference evaluation of the final database.
            served = service.execute(SIMPLE_QUERY)
            expected = evaluate_sgf(parse_sgf(SIMPLE_QUERY), service.database)
            assert served.result.output().tuples() == expected["Z"].tuples()
