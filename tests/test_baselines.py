"""Tests for the simulated Hive/Pig baselines (HPAR, HPARS, PPAR)."""

import pytest

from repro.baselines.jobs import (
    BaselineCombineJob,
    BaselineSemiJoinJob,
    HiveOuterJoinJob,
)
from repro.baselines.plans import (
    BASELINE_STRATEGIES,
    HIVE_INPUT_MB_PER_REDUCER,
    build_baseline_program,
    build_hpar_program,
    build_hpars_program,
    build_ppar_program,
    reducer_mb_for,
)
from repro.core.strategies import build_bsgf_program
from repro.core.costing import PlanCostEstimator
from repro.core.options import GumboOptions
from repro.cost.constants import PIG_INPUT_MB_PER_REDUCER
from repro.cost.estimates import StatisticsCatalog
from repro.mapreduce.engine import MapReduceEngine
from repro.query.bsgf import SemiJoinSpec
from repro.query.reference import evaluate_bsgf
from repro.workloads.queries import bsgf_query_set, database_for

from helpers import as_set, star_database, star_query


@pytest.fixture
def engine():
    return MapReduceEngine()


class TestBaselineJobs:
    def test_outer_join_keeps_all_guard_rows(self, engine):
        query = star_query()
        spec = query.semijoin_specs()[0]
        renamed = SemiJoinSpec("X", spec.guard, spec.conditional, spec.projection)
        result = engine.run_job(HiveOuterJoinJob("join", renamed), star_database())
        output = result.outputs["X"]
        assert len(output) == len(star_database()["R"])
        flags = {row[-1] for row in output}
        assert flags <= {0, 1}

    def test_semi_join_keeps_only_matches(self, engine):
        query = star_query()
        spec = query.semijoin_specs()[0]
        renamed = SemiJoinSpec("X", spec.guard, spec.conditional, spec.projection)
        result = engine.run_job(BaselineSemiJoinJob("join", renamed), star_database())
        matching = {
            row for row in star_database()["R"] if any(
                row[0] == s[0] for s in star_database()["S"]
            )
        }
        assert as_set(result.outputs["X"]) == frozenset(matching)

    def test_baseline_jobs_ship_full_tuples(self):
        query = star_query()
        spec = query.semijoin_specs()[0]
        job = BaselineSemiJoinJob("join", spec)
        pairs = list(job.map("R", (1, 2, 3, 4)))
        assert len(pairs) == 1
        _, value = pairs[0]
        assert job.value_bytes(value) == 4 * 10

    def test_combine_job_validates_intermediates(self):
        query = star_query()
        with pytest.raises(ValueError):
            BaselineCombineJob("combine", [query], {"OUT": ["only-one"]}, flagged=False)


class TestBaselinePlans:
    def test_hpar_is_sequential(self):
        queries = bsgf_query_set("A1")
        program = build_hpar_program(queries)
        # 4 outer joins run sequentially + 1 combine job = 5 rounds.
        assert len(program) == 5
        assert program.rounds() == 5

    def test_hpar_groups_shared_key_queries(self):
        queries = bsgf_query_set("A3")
        program = build_hpar_program(queries)
        # Hive groups joins sharing the key: 2 rounds as the paper observes.
        assert program.rounds() == 2

    def test_hpars_and_ppar_are_parallel(self):
        queries = bsgf_query_set("A1")
        assert build_hpars_program(queries).rounds() == 2
        assert build_ppar_program(queries).rounds() == 2

    def test_build_baseline_program_dispatch(self):
        queries = bsgf_query_set("A1")
        for strategy in BASELINE_STRATEGIES:
            program = build_baseline_program(queries, strategy)
            assert len(program) >= 2
        with pytest.raises(ValueError):
            build_baseline_program(queries, "unknown")

    def test_reducer_mb_for(self):
        assert reducer_mb_for("hpar") == HIVE_INPUT_MB_PER_REDUCER
        assert reducer_mb_for("hpars") == HIVE_INPUT_MB_PER_REDUCER
        assert reducer_mb_for("ppar") == PIG_INPUT_MB_PER_REDUCER


class TestBaselineCorrectness:
    @pytest.mark.parametrize("strategy", ["hpar", "hpars", "ppar"])
    @pytest.mark.parametrize("query_id", ["A1", "A3", "B2"])
    def test_baselines_compute_correct_answers(self, engine, strategy, query_id):
        queries = bsgf_query_set(query_id)
        db = database_for(queries, guard_tuples=150, selectivity=0.5, seed=6)
        program = build_baseline_program(queries, strategy)
        result = engine.run_program(program, db)
        for query in queries:
            assert as_set(result.outputs[query.output]) == as_set(
                evaluate_bsgf(query, db)
            ), (strategy, query.output)

    def test_baselines_shuffle_more_than_gumbo(self, engine):
        """The baselines lack packing/tuple references: more communication than GREEDY."""
        queries = bsgf_query_set("A1")
        db = database_for(queries, guard_tuples=300, selectivity=0.5, seed=6)
        estimator = PlanCostEstimator(
            StatisticsCatalog(db, sample_size=200), options=GumboOptions()
        )
        gumbo_program = build_bsgf_program(queries, "greedy", estimator)
        gumbo_comm = engine.run_program(gumbo_program, db).metrics.communication_mb
        for strategy in BASELINE_STRATEGIES:
            program = build_baseline_program(queries, strategy)
            baseline_comm = engine.run_program(program, db).metrics.communication_mb
            assert baseline_comm > gumbo_comm, strategy
