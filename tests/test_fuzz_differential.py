"""The workload fuzzer: differential oracle, generator invariants, shrinking.

Three layers are covered:

* a seeded smoke campaign (50 random programs) asserting that every
  applicable strategy on every backend — including the dynamic executor —
  agrees with the reference evaluator, tuple for tuple and simulated-metric
  for simulated-metric;
* generator invariants: guardedness by construction, valid dependency
  structure, schema-consistent databases, parse/unparse round-trips,
  determinism of ``(seed, index)``;
* failure handling: a deliberately corrupted strategy is detected and the
  counterexample greedily shrunk to a minimal case, and the emitted repro
  script is a self-contained Python program.
"""

from __future__ import annotations

import random

import pytest

from repro.core.fused import FusedOneRoundJob
from repro.fuzz import (
    DifferentialOracle,
    FuzzConfig,
    FuzzOptions,
    case_rng,
    case_size,
    generate_case,
    generate_database,
    generate_program,
    make_profile,
    run_fuzz,
    shrink_case,
)
from repro.fuzz.profiles import PROFILE_NAMES
from repro.model.database import Database
from repro.query.conditions import TRUE
from repro.query.parser import parse_sgf


# -- the seeded smoke campaign -------------------------------------------------------


def test_smoke_campaign_all_strategies_and_backends_agree():
    """50 random programs: every strategy × backend matches the reference."""
    report = run_fuzz(
        FuzzOptions(seed=7, iterations=50, workers=2, stop_on_failure=False)
    )
    details = "\n\n".join(c.describe() for c in report.counterexamples)
    assert report.ok, f"fuzzer found divergences:\n{details}"
    assert report.cases_run == 50
    # The sweep really exercised a matrix, not a single combination.
    assert report.combinations_checked >= 50 * 2 * 2


def test_campaign_is_deterministic():
    first = generate_case(11, 3)
    second = generate_case(11, 3)
    assert first.program == second.program
    assert {r.name: r.tuples() for r in first.database} == {
        r.name: r.tuples() for r in second.database
    }


# -- generator invariants ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(4))
def test_generator_guardedness_invariants(seed):
    """Generated programs satisfy the SGF restrictions by construction."""
    config = FuzzConfig(max_statements=6)
    for index in range(30):
        rng = case_rng(seed, index)
        program = generate_program(rng, config)
        produced = []
        for query in program:
            guard_vars = query.guard.variable_set()
            # 1. Every SELECT variable occurs in the guard.
            assert set(query.projection) <= guard_vars
            # 2. Distinct conditional atoms share only guard variables.
            atoms = query.conditional_atoms
            for i in range(len(atoms)):
                for j in range(i + 1, len(atoms)):
                    assert atoms[i].shared_variables(atoms[j]) <= guard_vars
            # 3. References only go backwards (no self/forward references).
            assert query.output not in query.relation_names
            for name in query.relation_names:
                if name.startswith("Z"):
                    assert name in produced
            produced.append(query.output)
        # 4. The concrete syntax round-trips exactly.
        assert parse_sgf(program.unparse()) == program


def test_generated_database_matches_program_schema():
    config = FuzzConfig(max_statements=5)
    for index in range(20):
        rng = case_rng(23, index)
        program = generate_program(rng, config)
        database = generate_database(rng, program, config)
        outputs = set(program.output_names)
        for query in program:
            for atom in (query.guard, *query.conditional_atoms):
                if atom.relation in outputs:
                    continue
                relation = database.get(atom.relation)
                assert relation is not None, f"missing relation {atom.relation}"
                assert relation.arity == atom.arity


@pytest.mark.parametrize("name", PROFILE_NAMES)
def test_every_profile_generates_valid_rows(name):
    profile = make_profile(name)
    rng = random.Random(99)
    for arity in (1, 3):
        count = profile.cardinality(rng, 10)
        assert 0 <= count <= 10
        rows = profile.rows(rng, arity, count, domain=5)
        assert len(rows) == count
        assert all(len(row) == arity for row in rows)
        # Values derive from draws over range(domain); the adversarial
        # profile maps draws to mixed types (and mixed may delegate to it),
        # everyone else stays integral.
        if name in ("adversarial", "mixed"):
            assert all(
                value is None or isinstance(value, (int, float, str))
                for row in rows
                for value in row
            )
        else:
            assert all(0 <= value < 5 for row in rows for value in row)
        # The one-shot template honours the same bounds.
        rows = profile.generate(rng, arity, 10, 5)
        assert len(rows) <= 10
        assert all(len(row) == arity for row in rows)


def test_unknown_profile_rejected():
    with pytest.raises(ValueError):
        make_profile("nope")


def test_degenerate_profile_can_produce_multi_tuple_relations():
    """The constant-key shape yields >1 distinct tuples (sets dedup copies)."""
    profile = make_profile("degenerate")
    rng = random.Random(1)
    saw_multi = False
    for _ in range(50):
        count = profile.cardinality(rng, 10)
        rows = profile.rows(rng, 3, count, domain=6)
        distinct = set(rows)
        if len(distinct) > 1:
            saw_multi = True
            # All tuples of the constant-key shape share the first column.
            assert len({row[0] for row in distinct}) == 1
    assert saw_multi


# -- shrinker convergence ------------------------------------------------------------


def test_shrinker_converges_to_floor_under_always_true_predicate():
    """With an always-true predicate the shrinker reaches the minimal case."""
    case = generate_case(5, 2, FuzzConfig(max_statements=6))
    program, database = shrink_case(case.program, case.database, lambda p, d: True)
    assert len(program) == 1
    assert program[0].condition is TRUE
    assert sum(len(relation) for relation in database) == 0
    assert case_size(program, database) <= case_size(case.program, case.database)


def test_shrinker_preserves_the_interesting_property():
    """A predicate keyed on one relation's data keeps exactly that data."""
    case = generate_case(29, 0, FuzzConfig(max_statements=4))
    # Pick a base relation that actually has tuples in this case.
    target = next(r.name for r in case.database if len(r) > 0)

    def keeps_target(program, database):
        relation = database.get(target)
        return relation is not None and len(relation) >= 1

    program, database = shrink_case(case.program, case.database, keeps_target)
    assert len(database[target]) == 1
    others = sum(len(r) for r in database if r.name != target)
    assert others == 0


# -- corrupted strategies are detected and shrunk ------------------------------------


def test_corrupted_partition_strategy_is_detected_and_shrunk(monkeypatch):
    """Dropping a semi-join group from PAR's partition is caught and minimised."""
    import repro.core.strategies as strategies

    real = strategies.singleton_partition

    def corrupted(specs):
        groups = real(specs)
        return groups[:-1]

    monkeypatch.setattr(strategies, "singleton_partition", corrupted)
    report = run_fuzz(
        FuzzOptions(
            seed=3,
            iterations=20,
            config=FuzzConfig(max_statements=1),
            backends=("serial",),
        )
    )
    assert not report.ok, "corrupted PAR strategy was not detected"
    counterexample = report.counterexamples[0]
    assert any(d.strategy == "par" for d in counterexample.shrunk_divergences)
    # Greedy shrinking reached the minimal shape: one statement, one
    # conditional atom, no data at all.
    assert len(counterexample.program) == 1
    assert len(counterexample.program[0].conditional_atoms) == 1
    assert sum(len(r) for r in counterexample.database) == 0


def test_corrupted_one_round_job_is_isolated_to_that_strategy(monkeypatch):
    """A fused job that swallows outputs diverges on 1-ROUND and nowhere else.

    The kernel axis is disabled here: the corruption is injected into the
    interpreted ``reduce``, which the batch-kernel path (correctly) does not
    execute — the mirror-image corruption is covered in test_kernels.py.
    """
    monkeypatch.setattr(FusedOneRoundJob, "reduce", lambda self, key, values: iter(()))
    program = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
    database = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
    with DifferentialOracle(backends=("serial",), kernel_axis=False) as oracle:
        divergences = oracle.check(program, database)
    assert divergences, "corrupted 1-ROUND job was not detected"
    assert {d.strategy for d in divergences} == {"1-round"}
    assert all(d.kind == "mismatch" for d in divergences)

    # The shrunk counterexample still shows the missing-tuple divergence.
    def diverges(candidate_program, candidate_database):
        with DifferentialOracle(backends=("serial",), kernel_axis=False) as inner:
            return bool(inner.check(candidate_program, candidate_database))

    shrunk_program, shrunk_database = shrink_case(program, database, diverges)
    assert len(shrunk_program) == 1
    assert sum(len(r) for r in shrunk_database) == 1  # one guard tuple suffices


# -- counterexample repro scripts ----------------------------------------------------


def test_repro_script_is_executable_python(monkeypatch, tmp_path):
    import repro.core.strategies as strategies

    real = strategies.singleton_partition
    monkeypatch.setattr(strategies, "singleton_partition", lambda s: real(s)[:-1])
    report = run_fuzz(
        FuzzOptions(
            seed=3,
            iterations=10,
            config=FuzzConfig(max_statements=1),
            backends=("serial",),
        )
    )
    assert not report.ok
    script = report.counterexamples[0].script()
    # The script parses as a standalone Python program and embeds the case.
    compile(script, "counterexample.py", "exec")
    assert "parse_sgf" in script
    assert "DifferentialOracle" in script
    assert "generate_case(3," in script


def test_repro_script_survives_backslash_and_quote_constants():
    """The program is embedded via repr(), immune to escape-sequence mangling."""
    from repro.fuzz.runner import Counterexample

    program = parse_sgf('Z := SELECT (x) FROM R(x, "a\\tb", \'has"quote\');')
    assert any("\\t" in str(c.value) for c in program[0].guard.constants)
    database = Database.from_dict({"R": [(1, "a\\tb", 'has"quote')]})
    counterexample = Counterexample(
        case=generate_case(0, 0),
        divergences=[],
        program=program,
        database=database,
        shrunk_divergences=[],
    )
    script = counterexample.script()
    compile(script, "counterexample.py", "exec")
    # The embedded literal evaluates back to the exact program text.
    assert repr(program.unparse()) in script
    import ast

    embedded = next(
        node.args[0].value
        for node in ast.walk(ast.parse(script))
        if isinstance(node, ast.Call)
        and getattr(node.func, "id", "") == "parse_sgf"
        and isinstance(node.args[0], ast.Constant)
    )
    assert parse_sgf(embedded) == program


# -- oracle plumbing ----------------------------------------------------------------


def test_oracle_reports_errors_as_divergences():
    """A strategy that raises (not just mis-answers) is still a finding."""
    program = parse_sgf("Z := SELECT (x) FROM R(x) WHERE S(x);")
    database = Database.from_dict({"R": [(1,)], "S": [(1,)]})
    with DifferentialOracle(backends=("serial",)) as oracle:

        class Boom(RuntimeError):
            pass

        original = oracle._gumbos["serial"].execute

        def explode(query, db, strategy):
            if strategy == "greedy":
                raise Boom("injected")
            return original(query, db, strategy)

        oracle._gumbos["serial"].execute = explode
        divergences = oracle.check(program, database)
    errors = [d for d in divergences if d.kind == "error"]
    assert len(errors) == 1
    assert errors[0].strategy == "greedy"
    assert "injected" in errors[0].detail


def test_oracle_combinations_cover_dynamic_executor():
    program = parse_sgf("Z := SELECT (x) FROM R(x) WHERE S(x);")
    with DifferentialOracle(backends=("serial",)) as oracle:
        combos = oracle.combinations(program)
    strategies_seen = {strategy for strategy, _ in combos}
    assert "dynamic" in strategies_seen
    assert {"seq", "par", "greedy"} <= strategies_seen
