"""Unit tests for dependency graphs and multiway topological sorts."""

import pytest

from repro.model.atoms import Atom
from repro.model.terms import Variable
from repro.query.bsgf import BSGFQuery
from repro.query.conditions import atom
from repro.query.dependency import DependencyGraph, groups_to_queries
from repro.query.sgf import SGFQuery

X, Y = Variable("x"), Variable("y")


def bsgf(output, guard_name, cond_name):
    return BSGFQuery(
        output, (X, Y), Atom.of(guard_name, "x", "y"), atom(cond_name, "x")
    )


def example5_query() -> SGFQuery:
    """The dependency structure of Example 5 in the paper."""
    return SGFQuery(
        (
            bsgf("Q1", "R1", "S"),
            bsgf("Q2", "Q1", "T"),
            bsgf("Q3", "Q2", "U"),
            bsgf("Q4", "R2", "T"),
            bsgf("Q5", "Q3", "Q4"),
        )
    )


@pytest.fixture
def graph():
    return DependencyGraph(example5_query())


class TestGraphStructure:
    def test_nodes(self, graph):
        assert graph.nodes == ("Q1", "Q2", "Q3", "Q4", "Q5")

    def test_parents_and_children(self, graph):
        assert graph.parents["Q5"] == frozenset({"Q3", "Q4"})
        assert graph.children["Q1"] == {"Q2"}
        assert graph.children["Q5"] == set()

    def test_roots(self, graph):
        assert graph.roots() == ("Q1", "Q4")

    def test_edges_and_count(self, graph):
        assert set(graph.edges()) == {
            ("Q1", "Q2"),
            ("Q2", "Q3"),
            ("Q3", "Q5"),
            ("Q4", "Q5"),
        }
        assert graph.edge_count() == 4

    def test_topological_order_is_valid(self, graph):
        order = graph.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for parent, child in graph.edges():
            assert position[parent] < position[child]

    def test_levels(self, graph):
        assert graph.levels() == [["Q1", "Q4"], ["Q2"], ["Q3"], ["Q5"]]


class TestMultiwaySorts:
    def test_paper_example_has_four_sorts(self, graph):
        # Example 5 lists exactly four multiway topological sorts of G_Q.
        sorts = list(graph.all_multiway_sorts())
        assert len(sorts) == 4
        expected = {
            (("Q1", "Q4"), ("Q2",), ("Q3",), ("Q5",)),
            (("Q1",), ("Q2", "Q4"), ("Q3",), ("Q5",)),
            (("Q1",), ("Q2",), ("Q3", "Q4"), ("Q5",)),
            (("Q1",), ("Q2",), ("Q3",), ("Q4",), ("Q5",)),
        }
        normalised = {
            tuple(tuple(sorted(group)) for group in sort) for sort in sorts
        }
        assert normalised == expected

    def test_all_sorts_are_valid(self, graph):
        for sort in graph.all_multiway_sorts():
            assert graph.is_valid_multiway_sort(sort)

    def test_validity_rejects_missing_node(self, graph):
        assert not graph.is_valid_multiway_sort([["Q1", "Q2", "Q3", "Q4"]])

    def test_validity_rejects_duplicate_node(self, graph):
        assert not graph.is_valid_multiway_sort(
            [["Q1", "Q4"], ["Q2", "Q1"], ["Q3"], ["Q5"]]
        )

    def test_validity_rejects_edge_within_group(self, graph):
        assert not graph.is_valid_multiway_sort([["Q1", "Q2"], ["Q3", "Q4"], ["Q5"]])

    def test_validity_rejects_edge_going_backwards(self, graph):
        assert not graph.is_valid_multiway_sort(
            [["Q2"], ["Q1"], ["Q3"], ["Q4"], ["Q5"]]
        )

    def test_enumeration_guard(self, graph):
        with pytest.raises(ValueError):
            list(graph.all_multiway_sorts(max_nodes=2))


class TestOverlap:
    def test_overlap_counts_shared_relations(self, graph):
        # Q2 (guard Q1, conditional T) vs {Q4} (guard R2, conditional T): share T.
        assert graph.overlap("Q2", ["Q4"]) == 1

    def test_overlap_zero_when_disjoint(self, graph):
        assert graph.overlap("Q1", ["Q4"]) == 0

    def test_overlap_counts_only_referenced_relations_not_outputs(self, graph):
        # Q5 references the relations Q3 and Q4, but the queries named Q3/Q4
        # only *produce* those relations — following the paper, outputs do not
        # count towards the overlap.
        assert graph.overlap("Q5", ["Q3", "Q4"]) == 0

    def test_overlap_with_multiple_members(self, graph):
        # Q4 (relations R2, T) shares T with Q2 (relations Q1, T).
        assert graph.overlap("Q4", ["Q2", "Q3"]) == 1

    def test_groups_to_queries(self, graph):
        groups = groups_to_queries(graph, [["Q1", "Q4"], ["Q2"]])
        assert [[q.output for q in group] for group in groups] == [["Q1", "Q4"], ["Q2"]]
