"""Unit tests for the planner-side cost estimator (Equations 5-7, 9)."""

import pytest

from repro.core.costing import PlanCostEstimator
from repro.core.eval_job import EvalTarget
from repro.core.options import GumboOptions
from repro.cost.estimates import StatisticsCatalog
from repro.cost.models import GumboCostModel, WangCostModel

from helpers import shared_key_query, star_database, star_query


@pytest.fixture
def catalog():
    return StatisticsCatalog(star_database(), sample_size=100)


@pytest.fixture
def estimator(catalog):
    return PlanCostEstimator(catalog, GumboCostModel(), GumboOptions())


class TestMSJEstimates:
    def test_one_partition_per_distinct_relation(self, estimator):
        specs = star_query().semijoin_specs()
        partitions = estimator.msj_partitions(specs)
        labels = {p.label for p in partitions}
        assert labels == {"R", "S", "T", "U", "V"}

    def test_shared_relation_read_once(self, estimator):
        specs = shared_key_query().semijoin_specs()
        partitions = estimator.msj_partitions(specs)
        assert len(partitions) == 5
        input_total = sum(p.input_mb for p in partitions)
        db = star_database()
        assert input_total == pytest.approx(db.size_mb())

    def test_grouped_cost_below_separate_cost_with_shared_guard(self, estimator):
        """Equation (5) vs (6): grouping shares the guard scan."""
        specs = star_query().semijoin_specs()
        assert estimator.msj_cost(specs) < estimator.separate_cost(specs)

    def test_gain_positive_for_shared_guard(self, estimator):
        specs = star_query().semijoin_specs()
        assert estimator.gain([specs[0]], [specs[1]]) > 0

    def test_gain_is_symmetric(self, estimator):
        specs = star_query().semijoin_specs()
        assert estimator.gain([specs[0]], [specs[1]]) == pytest.approx(
            estimator.gain([specs[1]], [specs[0]])
        )

    def test_packing_lowers_estimated_intermediate_for_shared_keys(self, catalog):
        specs = shared_key_query().semijoin_specs()
        packed = PlanCostEstimator(catalog, options=GumboOptions(message_packing=True))
        plain = PlanCostEstimator(catalog, options=GumboOptions(message_packing=False))
        packed_mb = sum(p.intermediate_mb for p in packed.msj_partitions(specs))
        plain_mb = sum(p.intermediate_mb for p in plain.msj_partitions(specs))
        assert packed_mb < plain_mb

    def test_tuple_reference_lowers_estimated_output(self, catalog):
        spec = star_query().semijoin_specs()[0]
        with_ref = PlanCostEstimator(
            catalog, options=GumboOptions(tuple_reference=True)
        )
        without_ref = PlanCostEstimator(
            catalog, options=GumboOptions(tuple_reference=False)
        )
        assert with_ref.semijoin_output_mb(spec) < without_ref.semijoin_output_mb(spec)

    def test_estimated_intermediate_tracks_execution(self):
        """The estimate should be close to the engine's measured intermediate.

        A generated A1 workload is used (rather than the 5-tuple toy database)
        so that coincidental value collisions, which the estimator cannot
        foresee, do not dominate.
        """
        from repro.core.msj import MSJJob
        from repro.mapreduce.engine import MapReduceEngine
        from repro.workloads.queries import database_for, query_a1

        queries = query_a1()
        db = database_for(queries, guard_tuples=400, selectivity=0.5, seed=2)
        estimator = PlanCostEstimator(
            StatisticsCatalog(db, sample_size=400), options=GumboOptions()
        )
        specs = queries[0].semijoin_specs()
        estimate = sum(p.intermediate_mb for p in estimator.msj_partitions(specs))
        job = MSJJob("msj", specs, GumboOptions(), emit_projection=False)
        measured = MapReduceEngine().run_job(job, db).metrics.intermediate_mb
        # The estimator cannot foresee same-key packing across different guard
        # tuples inside one map task, so it over-approximates slightly.
        assert measured <= estimate <= 1.5 * measured


class TestEvalAndProgramEstimates:
    def test_eval_cost_positive(self, estimator):
        query = star_query()
        targets = [EvalTarget(query, tuple(s.output for s in query.semijoin_specs()))]
        assert estimator.eval_cost(targets) > 0

    def test_eval_cost_for_queries_matches_targets(self, estimator):
        query = star_query()
        targets = [EvalTarget(query, tuple(s.output for s in query.semijoin_specs()))]
        assert estimator.eval_cost_for_queries([query]) == pytest.approx(
            estimator.eval_cost(targets)
        )

    def test_basic_program_cost_adds_eval(self, estimator):
        query = star_query()
        specs = query.semijoin_specs()
        groups = [[s] for s in specs]
        assert estimator.basic_program_cost([query], groups) > estimator.separate_cost(
            specs
        )

    def test_one_round_estimate_cheaper_than_two_round(self, estimator):
        query = shared_key_query()
        specs = query.semijoin_specs()
        one_round = estimator.one_round_estimate([query]).cost
        two_round = estimator.basic_program_cost([query], [specs])
        assert one_round < two_round

    def test_selectivity_outputs_smaller_than_upper_bound(self, catalog):
        query = star_query()
        upper = PlanCostEstimator(catalog, use_selectivity_for_outputs=False)
        selective = PlanCostEstimator(catalog, use_selectivity_for_outputs=True)
        assert selective.bsgf_output_mb(query) <= upper.bsgf_output_mb(query)


class TestModelChoice:
    def test_wang_estimate_not_above_gumbo(self, catalog):
        """Aggregating can only hide merge cost, never add it."""
        specs = star_query().semijoin_specs()
        gumbo = PlanCostEstimator(catalog, GumboCostModel())
        wang = PlanCostEstimator(catalog, WangCostModel())
        assert wang.msj_cost(specs) <= gumbo.msj_cost(specs) + 1e-9
