"""The shared-memory data plane: bit-exact round trips, parity, leak-proofing.

The data plane may change *how* chunk payloads reach parallel and sharded
workers — never *what* they compute.  The tests here pin that contract from
every side:

* a hypothesis property: ``ColumnBlock.packed()`` ⇄ shm attach round trips
  are IEEE-754 bit-exact (NaN payloads and ``-0.0`` included), empty columns
  and object-dtype columns take the pickle fallback, mixed blocks ship typed
  columns via the segment and object columns inline;
* :class:`SegmentPool` refcounting: create/attach/release, idempotent
  release, ``close_all``, and — after every test — zero orphaned
  ``/dev/shm/repro_*`` segments;
* the full Section 5 workload matrix on ``parallel`` and ``sharded`` under
  ``--data-plane shm`` *and* ``pickle``: outputs and simulated metrics
  bit-identical to the serial reference on both planes;
* worker-crash recovery on the shm plane: the respawned shard re-attaches
  the cluster-owned segments, the retried batch matches, nothing leaks;
* a differential fuzz campaign on the shm axis (the nightly CI job runs the
  long version);
* the ``repro_bytes_shipped{plane}`` / ``repro_shm_bytes_resident``
  instruments and the config/CLI plumbing of ``--data-plane``.
"""

from __future__ import annotations

import glob
import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.core.config import ExecutionConfig
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.exec import SimulatedBackend, make_backend
from repro.exec.shm import (
    DATA_PLANES,
    SEGMENT_PREFIX,
    SegmentPool,
    ShmPayload,
    decode_payload,
    encode_block,
    normalise_data_plane,
    payload_segment,
    shm_available,
    typed_nbytes,
)
from repro.fuzz import FuzzConfig, FuzzOptions, run_fuzz
from repro.mapreduce.engine import MapReduceEngine
from repro.model.relation import ColumnBlock
from repro.obs import metrics as obs_metrics
from repro.workloads.queries import (
    bsgf_query_set,
    database_for,
    section5_workloads,
    workload_query,
)

from test_exec_backends import _assert_results_match

requires_shm = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def _leaked_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


@pytest.fixture(autouse=True, scope="module")
def no_leaked_segments():
    """The module must leave /dev/shm clean of repro-owned segments.

    Module-scoped (finalised *after* the module's backends close) because
    resident shm segments legitimately live as long as their sharded
    cluster; orphans are what leak.  The CI leak check enforces the same
    invariant after the whole suite.
    """
    before = set(_leaked_segments())
    yield
    assert set(_leaked_segments()) <= before


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _assert_rows_bit_equal(expected, actual):
    assert len(expected) == len(actual)
    for row_e, row_a in zip(expected, actual):
        assert len(row_e) == len(row_a)
        for cell_e, cell_a in zip(row_e, row_a):
            assert type(cell_e) is type(cell_a)
            if isinstance(cell_e, float):
                assert _bits(cell_e) == _bits(cell_a)
            else:
                assert cell_e == cell_a


# -- plane selection -----------------------------------------------------------------


class TestNormalise:
    def test_canonical_names(self):
        assert DATA_PLANES == ("auto", "shm", "pickle")
        for name in DATA_PLANES:
            assert normalise_data_plane(name) == name
            assert normalise_data_plane(name.upper()) == name

    def test_none_is_auto(self):
        assert normalise_data_plane(None) == "auto"

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown data plane"):
            normalise_data_plane("mmap")


# -- segment pool --------------------------------------------------------------------


@requires_shm
class TestSegmentPool:
    def test_create_release_unlinks(self):
        pool = SegmentPool()
        segment = pool.create(64)
        assert segment.name.startswith(SEGMENT_PREFIX)
        assert f"/dev/shm/{segment.name}" in _leaked_segments()
        pool.release(segment.name)
        assert len(pool) == 0
        assert f"/dev/shm/{segment.name}" not in _leaked_segments()

    def test_attach_refcounts(self):
        owner = SegmentPool()
        segment = owner.create(64)
        segment.buf[:3] = b"abc"
        attacher = SegmentPool()
        view = attacher.attach(segment.name)
        assert bytes(view.buf[:3]) == b"abc"
        again = attacher.attach(segment.name)
        assert again is view  # refcounted, one mapping
        attacher.release(segment.name)
        assert len(attacher) == 1  # still referenced once
        attacher.release(segment.name)
        assert len(attacher) == 0
        # Attachers never unlink: the name is still owned by the creator.
        assert f"/dev/shm/{segment.name}" in _leaked_segments()
        owner.release(segment.name)

    def test_release_unknown_is_idempotent(self):
        pool = SegmentPool()
        pool.release("repro_dp_never_created")  # must not raise

    def test_close_all(self):
        pool = SegmentPool()
        names = [pool.create(32).name for _ in range(3)]
        pool.close_all()
        assert len(pool) == 0
        for name in names:
            assert f"/dev/shm/{name}" not in _leaked_segments()


# -- packed ⇄ shm round trip (hypothesis) --------------------------------------------

# Any 8 bytes are a valid IEEE-754 double — including quiet/signalling NaNs
# with payloads, infinities, subnormals and -0.0.
any_double = st.binary(min_size=8, max_size=8).map(
    lambda raw: struct.unpack("<d", raw)[0]
)
int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)


@requires_shm
class TestRoundTrip:
    @given(
        ints=st.lists(int64, min_size=0, max_size=40),
        floats=st.lists(any_double, min_size=0, max_size=40),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_typed_columns_are_bit_exact(self, ints, floats):
        length = min(len(ints), len(floats))
        rows = [(ints[i], floats[i]) for i in range(length)]
        block = ColumnBlock.from_rows(rows, arity=2)
        pool = SegmentPool()
        payload = encode_block(block, pool, "shm")
        try:
            if length == 0:
                # No typed bytes: the pickle plane applies by definition.
                assert not isinstance(payload, ShmPayload)
            else:
                assert isinstance(payload, ShmPayload)
                assert typed_nbytes(block.packed()) == 16 * length
            decoded = decode_payload(payload, pool)
            _assert_rows_bit_equal(rows, decoded.rows())
            decoded.release()
        finally:
            segment = payload_segment(payload)
            if segment is not None:
                pool.release(segment)
        assert len(pool) == 0

    @given(
        rows=st.lists(
            st.tuples(
                int64,
                st.one_of(
                    st.booleans(),
                    st.text(max_size=6),
                    st.integers(min_value=2**63, max_value=2**70),
                    st.none(),
                ),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_object_columns_ride_inline(self, rows):
        """Mixed blocks: the int column crosses via shm, the object column
        rides inside the descriptor by pickle — exact values either way."""
        block = ColumnBlock.from_rows(rows, arity=2)
        pool = SegmentPool()
        payload = encode_block(block, pool, "shm")
        try:
            if isinstance(payload, ShmPayload):
                kinds = [entry[0] for entry in payload.columns]
                assert kinds == ["q", "o"]
            decoded = decode_payload(payload, pool)
            assert decoded.rows() == rows
            decoded.release()
        finally:
            segment = payload_segment(payload)
            if segment is not None:
                pool.release(segment)
        assert len(pool) == 0

    def test_special_float_values(self):
        rows = [
            (float("nan"),),
            (struct.unpack("<d", b"\x01\x00\x00\x00\x00\x00\xf0\x7f")[0],),
            (-0.0,),
            (float("inf",),),
            (5e-324,),
        ]
        block = ColumnBlock.from_rows(rows, arity=1)
        pool = SegmentPool()
        payload = encode_block(block, pool, "shm")
        decoded = decode_payload(payload, pool)
        _assert_rows_bit_equal(rows, decoded.rows())
        decoded.release()
        pool.release(payload_segment(payload))
        assert len(pool) == 0

    def test_pickle_plane_is_the_historical_tuple(self):
        block = ColumnBlock.from_rows([(1, 2.0), (3, 4.0)], arity=2)
        pool = SegmentPool()
        payload = encode_block(block, pool, "pickle")
        assert payload == block.packed()
        assert payload_segment(payload) is None
        assert len(pool) == 0
        decoded = decode_payload(payload, pool)
        assert decoded.rows() == block.rows()
        decoded.release()  # no-op on the pickle plane


# -- backend parity matrix -----------------------------------------------------------


@pytest.fixture(scope="module")
def serial_backend():
    return SimulatedBackend(MapReduceEngine())


@pytest.fixture(scope="module", params=["shm", "pickle"])
def parallel_backend(request):
    if request.param == "shm" and not shm_available():
        pytest.skip("POSIX shared memory unavailable")
    backend = make_backend(
        "parallel",
        engine=MapReduceEngine(),
        workers=2,
        data_plane=request.param,
    )
    yield backend
    backend.close()


@pytest.fixture(scope="module", params=["shm", "pickle"])
def sharded_backend(request):
    if request.param == "shm" and not shm_available():
        pytest.skip("POSIX shared memory unavailable")
    backend = make_backend(
        "sharded", engine=MapReduceEngine(), shards=2, data_plane=request.param
    )
    yield backend
    backend.close()


SECTION5_IDS = [query_id for query_id, _ in section5_workloads()]


class TestParallelParity:
    @pytest.mark.parametrize("query_id", SECTION5_IDS)
    def test_section5_workloads(self, query_id, serial_backend, parallel_backend):
        query = workload_query(query_id)
        database = database_for(query, guard_tuples=90, selectivity=0.5, seed=5)
        serial = Gumbo(backend=serial_backend).execute(query, database)
        parallel = Gumbo(backend=parallel_backend).execute(query, database)
        _assert_results_match(serial, parallel)
        assert parallel.metrics.backend == "parallel"


class TestShardedParity:
    @pytest.mark.parametrize("query_id", SECTION5_IDS)
    def test_section5_workloads(self, query_id, serial_backend, sharded_backend):
        query = workload_query(query_id)
        database = database_for(query, guard_tuples=90, selectivity=0.5, seed=5)
        serial = Gumbo(backend=serial_backend).execute(query, database)
        sharded = Gumbo(backend=sharded_backend).execute(query, database)
        _assert_results_match(serial, sharded)
        assert sharded.metrics.backend == "sharded"


@requires_shm
class TestCrashRecovery:
    def test_respawn_reattaches_resident_segments(self, serial_backend):
        """A worker killed mid-request on the shm plane: the respawned shard
        re-attaches the cluster-owned segments (tiny descriptor reload, not
        a row re-ship), the retried batch matches serial, nothing leaks."""
        queries = bsgf_query_set("A3")
        database = database_for(queries, guard_tuples=300, selectivity=0.5, seed=3)
        serial = Gumbo(backend=serial_backend).execute(queries, database, "greedy")
        backend = make_backend("sharded", shards=2, data_plane="shm")
        try:
            warm = Gumbo(backend=backend).execute(queries, database, "greedy")
            _assert_results_match(serial, warm)
            backend.cluster.inject_crash(0)
            recovered = Gumbo(backend=backend).execute(queries, database, "greedy")
            _assert_results_match(serial, recovered)
            assert backend.cluster.respawns >= 1
            assert backend.cluster.retries >= 1
        finally:
            backend.close()

    def test_parallel_shipping_segments_are_freed_per_wave(self, serial_backend):
        queries = bsgf_query_set("A1")
        database = database_for(queries, guard_tuples=200, selectivity=0.5, seed=9)
        serial = Gumbo(backend=serial_backend).execute(queries, database, "greedy")
        backend = make_backend("parallel", workers=2, data_plane="shm")
        try:
            result = Gumbo(backend=backend).execute(queries, database, "greedy")
            _assert_results_match(serial, result)
            # Wave segments are released eagerly, not held until close().
            assert len(backend._segments) == 0
        finally:
            backend.close()


# -- fuzz axis -----------------------------------------------------------------------


@requires_shm
class TestFuzzAxis:
    def test_small_shm_campaign_has_zero_divergence(self):
        report = run_fuzz(
            FuzzOptions(
                seed=11,
                iterations=4,
                config=FuzzConfig(max_statements=3),
                backends=("serial", "parallel", "sharded"),
                workers=2,
                shards=2,
                data_plane="shm",
                shrink=False,
                include_optimal=False,
                kernel_axis=False,
                stop_on_failure=False,
            )
        )
        assert report.ok, report.counterexamples
        assert report.cases_run == 4


# -- observability -------------------------------------------------------------------


@requires_shm
class TestInstruments:
    def test_shipped_bytes_and_residency(self):
        registry = obs_metrics.default_registry()
        shipped_shm = registry.counter("repro_bytes_shipped", plane="shm")
        resident = registry.gauge("repro_shm_bytes_resident")
        before = shipped_shm.value
        pool = SegmentPool()
        block = ColumnBlock.from_rows([(i, float(i)) for i in range(64)], arity=2)
        payload = encode_block(block, pool, "shm")
        assert shipped_shm.value == before + 16 * 64
        assert resident.value >= 16 * 64
        level = resident.value
        pool.release(payload_segment(payload))
        assert resident.value == level - 16 * 64

    def test_pickle_plane_counts_bytes_too(self):
        registry = obs_metrics.default_registry()
        shipped_pickle = registry.counter("repro_bytes_shipped", plane="pickle")
        before = shipped_pickle.value
        pool = SegmentPool()
        block = ColumnBlock.from_rows([(i,) for i in range(8)], arity=1)
        encode_block(block, pool, "pickle")
        assert shipped_pickle.value == before + 8 * 8


# -- configuration plumbing ----------------------------------------------------------


class TestPlumbing:
    def test_execution_config_normalises_and_threads(self):
        config = ExecutionConfig(backend="parallel", data_plane="SHM")
        assert config.data_plane == "shm"
        assert config.to_options().data_plane == "shm"
        with pytest.raises(ValueError, match="unknown data plane"):
            ExecutionConfig(data_plane="tcp")

    def test_options_validate(self):
        assert GumboOptions(data_plane="Pickle").data_plane == "pickle"
        with pytest.raises(ValueError, match="unknown data plane"):
            GumboOptions(data_plane="udp")

    def test_backends_carry_their_plane(self):
        for name in ("parallel", "sharded"):
            backend = make_backend(name, workers=1, shards=1, data_plane="pickle")
            try:
                assert backend.data_plane == "pickle"
            finally:
                backend.close()

    def test_make_backend_instance_conflict(self):
        backend = make_backend("parallel", workers=1, data_plane="pickle")
        try:
            assert make_backend(backend, data_plane="pickle") is backend
            with pytest.raises(ValueError, match="its own data plane"):
                make_backend(backend, data_plane="shm")
        finally:
            backend.close()

    def test_connect_accepts_data_plane(self):
        with repro.connect(
            {"R": [(1, 2)], "S": [(1,)]},
            backend="parallel",
            workers=1,
            data_plane="pickle",
        ) as conn:
            assert conn.config.data_plane == "pickle"
            result = conn.execute(
                "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);"
            )
            assert result.tuples() == {(1, 2)}

    def test_connect_conflicts(self):
        with pytest.raises(ValueError, match="not both"):
            repro.connect(
                {"R": [(1,)]},
                data_plane="shm",
                config=ExecutionConfig(),
            )
        with pytest.raises(ValueError, match="not both"):
            repro.connect(
                {"R": [(1,)]},
                data_plane="shm",
                options=GumboOptions(),
            )

    def test_sharded_external_cluster_conflict(self):
        from repro.service.sharded import ShardCluster, ShardedBackend

        cluster = ShardCluster(1, data_plane="pickle")
        try:
            backend = ShardedBackend(cluster=cluster)
            assert backend.data_plane == "pickle"
            backend.close()
            with pytest.raises(ValueError, match="data plane"):
                ShardedBackend(cluster=cluster, data_plane="shm")
        finally:
            cluster.close()
