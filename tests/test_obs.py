"""Tests for the observability subsystem (``repro.obs``).

Covers the tracing core (spans, contextvars propagation, the no-op fast
path), the metrics registry, the three exporters (JSONL / Chrome trace
events / Prometheus text), cross-process span parenting, and the
acceptance criterion: one traced ``QueryService.execute`` of workload A3 on
the parallel backend yields a single trace covering request → plan (or
cache hit) → program → per-job → per-wave, including worker-side spans —
while leaving outputs and simulated metrics bit-identical to the untraced
path.
"""

import json
import os

import pytest

from repro import obs
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.exec import make_backend
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.options import ObsOptions
from repro.obs.trace import NOOP, Span, Tracer
from repro.service import QueryService
from repro.workloads.queries import database_for, workload_query


@pytest.fixture(autouse=True)
def _clean_collector():
    """Every test starts and ends with an empty default trace collector."""
    obs.drain_traces()
    yield
    obs.drain_traces()


# -- tracing core -----------------------------------------------------------------


class TestNoopFastPath:
    def test_span_without_active_trace_is_shared_noop(self):
        assert not obs.tracing_enabled()
        handle = obs.span("anything", attr=1)
        assert handle is NOOP
        with handle as inner:
            assert inner is NOOP
            assert inner.set(more=2) is NOOP
        assert obs.drain_traces() == []

    def test_disabled_trace_is_noop(self):
        with obs.trace("request", enabled=False) as handle:
            assert handle is NOOP
            assert not obs.tracing_enabled()
            assert obs.span("child") is NOOP
        assert obs.drain_traces() == []


class TestTracePropagation:
    def test_trace_collects_nested_spans(self):
        with obs.trace("root", kind="test") as root:
            root.set(extra=True)
            with obs.span("child") as child:
                with obs.span("grandchild", depth=2):
                    assert obs.tracing_enabled()
        (tracer,) = obs.drain_traces()
        assert len(tracer) == 3
        root_span = tracer.root()
        assert root_span.name == "root"
        assert root_span.attributes == {"kind": "test", "extra": True}
        (child_span,) = tracer.children_of(root_span)
        assert child_span.name == "child"
        assert child_span.span_id == child.span_id
        (grandchild,) = tracer.children_of(child_span)
        assert grandchild.name == "grandchild"
        assert grandchild.attributes == {"depth": 2}
        assert grandchild.duration_s >= 0.0

    def test_nested_trace_joins_as_child_span(self):
        # A service-level trace wrapping Gumbo's own entry trace must yield
        # ONE trace, with the inner trace demoted to a plain child span.
        with obs.trace("outer"):
            with obs.trace("inner"):
                with obs.span("leaf"):
                    pass
        traces = obs.drain_traces()
        assert len(traces) == 1
        (tracer,) = traces
        assert tracer.root().name == "outer"
        names = {s.name for s in tracer.spans}
        assert names == {"outer", "inner", "leaf"}
        (inner,) = tracer.children_of(tracer.root())
        assert inner.name == "inner"

    def test_exception_closes_span_and_propagates(self):
        with pytest.raises(RuntimeError):
            with obs.trace("root"):
                with obs.span("failing"):
                    raise RuntimeError("boom")
        (tracer,) = obs.drain_traces()
        failing = next(s for s in tracer.spans if s.name == "failing")
        assert failing.end_s >= failing.start_s
        assert failing.attributes.get("error", "").startswith("RuntimeError")
        assert tracer.root().attributes.get("error", "").startswith("RuntimeError")

    def test_context_restored_after_trace(self):
        with obs.trace("root"):
            pass
        assert obs.current_tracer() is None
        assert obs.current_span() is None
        assert not obs.tracing_enabled()


class TestSpanSerialization:
    def test_as_dict_from_dict_roundtrip(self):
        span = Span(
            name="op",
            trace_id="t.1",
            span_id="s.1",
            parent_id="s.0",
            start_s=1.5,
            end_s=2.25,
            pid=1234,
            attributes={"rows": 10, "label": "x"},
        )
        restored = Span.from_dict(span.as_dict())
        assert restored.as_dict() == span.as_dict()

    def test_worker_payload_adoption(self):
        # Worker processes ship plain dicts; the parent re-parents them.
        payload = obs.worker_payload("map_task", 10.0, 10.5, relation="R", rows=7)
        assert payload["pid"] == os.getpid()
        tracer = Tracer()
        adopted = tracer.adopt_payload(payload, parent_id="wave.1")
        assert adopted.name == "map_task"
        assert adopted.parent_id == "wave.1"
        assert adopted.trace_id == tracer.trace_id
        assert adopted.duration_s == pytest.approx(0.5)
        assert adopted.attributes == {"relation": "R", "rows": 7}


# -- metrics ----------------------------------------------------------------------


class TestMetrics:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        plain = registry.counter("requests_total")
        plain.inc()
        plain.inc(2)
        assert plain.value == 3
        hit = registry.counter("cache_total", outcome="hit")
        miss = registry.counter("cache_total", outcome="miss")
        assert hit is not miss
        hit.inc()
        assert registry.counter("cache_total", outcome="hit") is hit
        assert miss.value == 0

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError):
            registry.gauge("thing")

    def test_histogram_summary_and_percentiles(self):
        histogram = Histogram("latency")
        for value in [0.001, 0.002, 0.003, 0.004, 0.1]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["sum"] == pytest.approx(0.11)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.1)
        assert summary["min"] <= summary["p50"] <= summary["p95"] <= summary["max"]
        assert summary["p99"] <= summary["max"]

    def test_empty_histogram_summary(self):
        summary = Histogram("empty").summary()
        assert summary["count"] == 0
        assert summary["sum"] == 0.0

    def test_registries_for_export_dedupes_default(self):
        default = obs.default_registry()
        extra = MetricsRegistry()
        registries = obs.registries_for_export([extra, default, extra])
        assert registries.count(default) == 1
        assert registries.count(extra) == 1


# -- exporters --------------------------------------------------------------------


def _sample_trace():
    with obs.trace("request", fingerprint="abc"):
        with obs.span("plan", strategy="greedy"):
            pass
        with obs.span("execute", jobs=2):
            with obs.span("job", job_id="J1"):
                pass
    (tracer,) = obs.drain_traces()
    return tracer


class TestExporters:
    def test_jsonl_roundtrip_is_lossless(self, tmp_path):
        tracer = _sample_trace()
        path = str(tmp_path / "spans.jsonl")
        count = obs.write_spans_jsonl(tracer.spans, path)
        assert count == len(tracer.spans) == 4
        restored = obs.spans_from_jsonl(path)
        assert [s.as_dict() for s in restored] == [
            s.as_dict() for s in tracer.spans
        ]

    def test_chrome_trace_validates_and_carries_ids(self, tmp_path):
        tracer = _sample_trace()
        path = str(tmp_path / "trace.json")
        written = obs.write_chrome_trace([tracer], path)
        assert written == len(tracer.spans)
        assert obs.validate_chrome_trace(path) == len(tracer.spans)
        with open(path) as handle:
            document = json.load(handle)
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"request", "plan", "execute", "job"}
        for event in events:
            assert event["args"]["trace_id"] == tracer.trace_id
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_validate_chrome_trace_rejects_garbage(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"traceEvents": [{"ph": "X", "name": "no-ts"}]}, handle)
        with pytest.raises(ValueError):
            obs.validate_chrome_trace(path)

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_jobs_total", path="kernel").inc(4)
        registry.histogram("repro_request_seconds").observe(0.05)
        text = obs.render_prometheus(registry)
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{path="kernel"} 4' in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert "repro_request_seconds_count 1" in text
        assert text.endswith("\n")

    def test_write_prometheus_merges_registries(self, tmp_path):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("alpha_total").inc()
        second.counter("beta_total").inc(2)
        path = str(tmp_path / "metrics.prom")
        obs.write_prometheus([first, second], path)
        with open(path) as handle:
            text = handle.read()
        assert "alpha_total 1" in text
        assert "beta_total 2" in text


# -- options ----------------------------------------------------------------------


class TestObsOptions:
    def test_tracing_property(self):
        assert not ObsOptions().tracing
        assert ObsOptions(trace=True).tracing
        assert ObsOptions(trace_out="trace.json").tracing

    def test_gumbo_options_default_off(self):
        assert not GumboOptions().trace


# -- end-to-end acceptance ---------------------------------------------------------


def _span_names(tracer):
    return {s.name for s in tracer.spans}


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def workload(self):
        query = workload_query("A3")
        database = database_for(list(query.subqueries), guard_tuples=120, seed=3)
        return query, database

    def test_traced_service_request_on_parallel_backend(self, workload):
        query, database = workload
        backend = make_backend("parallel", workers=2)
        gumbo = Gumbo(backend=backend, options=GumboOptions(trace=True))
        with QueryService(database, gumbo) as service:
            miss = service.execute(query)
            hit = service.execute(query)
        traces = obs.drain_traces()
        assert len(traces) == 2, "one trace per request, no fragments"
        miss_trace, hit_trace = traces

        # The cold request covers request → plan → choose → program →
        # job → wave → worker-side tasks, all in ONE trace.
        root = miss_trace.root()
        assert root.name == "service.request"
        assert root.attributes["plan_cached"] is False
        assert "fingerprint" in root.attributes
        names = _span_names(miss_trace)
        assert {
            "service.request",
            "gumbo.plan",
            "gumbo.execute_program",
            "program",
            "level",
            "job",
            "wave",
            "map_task",
            "reduce_task",
        } <= names
        for span in miss_trace.spans:
            assert span.trace_id == miss_trace.trace_id

        # Worker-side spans were re-parented under wave spans and carry the
        # worker pid.
        waves = [s for s in miss_trace.spans if s.name == "wave"]
        wave_ids = {s.span_id for s in waves}
        tasks = [
            s for s in miss_trace.spans if s.name in ("map_task", "reduce_task")
        ]
        assert tasks
        for task in tasks:
            assert task.parent_id in wave_ids
            assert task.pid is not None

        # The warm request hits the plan cache: no planning spans.
        assert hit.plan_cached
        assert hit_trace.root().attributes["plan_cached"] is True
        assert "gumbo.plan" not in _span_names(hit_trace)
        assert "job" in _span_names(hit_trace)

        # Every span nests inside its parent's time window (workers run on
        # the same machine, so monotonic clocks are comparable).
        by_id = {s.span_id: s for s in miss_trace.spans}
        for span in miss_trace.spans:
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert span.start_s >= parent.start_s - 1e-6
                assert span.end_s <= parent.end_s + 1e-6

        # Exports are lossless for the real trace too.
        document = obs.chrome_trace_events([miss_trace])
        span_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(span_events) == len(miss_trace.spans)

    def test_tracing_leaves_results_bit_identical(self, workload):
        query, database = workload
        results = {}
        for traced in (False, True):
            gumbo = Gumbo(options=GumboOptions(trace=traced))
            results[traced] = gumbo.execute(query, database)
            obs.drain_traces()
        untraced, traced = results[False], results[True]
        assert set(untraced.all_outputs) == set(traced.all_outputs)
        for name in untraced.all_outputs:
            assert (
                untraced.all_outputs[name].tuples()
                == traced.all_outputs[name].tuples()
            ), name
        assert untraced.summary() == traced.summary()

    def test_refresh_trace_and_histogram(self, workload):
        query, database = workload
        gumbo = Gumbo(options=GumboOptions(trace=True))
        with QueryService(database.copy(), gumbo) as service:
            service.materialize(query)
            obs.drain_traces()
            service.add_tuples("R", [(990, 991, 992, 993)], incremental=True)
            traces = obs.drain_traces()
        refresh_traces = [
            t for t in traces if t.root() and t.root().name == "service.refresh"
        ]
        assert len(refresh_traces) == 1
        (refresh_trace,) = refresh_traces
        assert "incremental.refresh" in _span_names(refresh_trace)
        refresh = next(
            s for s in refresh_trace.spans if s.name == "incremental.refresh"
        )
        assert "added" in refresh.attributes
        assert "engine_runs" in refresh.attributes
