"""Tests for the workload generators, experiment queries and scaled environment."""

import pytest
from repro.query.reference import evaluate_bsgf
from repro.query.sgf import SGFQuery
from repro.workloads.generator import (
    WorkloadScale,
    generate_conditional,
    generate_database,
    generate_guard,
)
from repro.workloads.queries import (
    BSGF_QUERY_IDS,
    SGF_QUERY_IDS,
    a3_family,
    bsgf_query_set,
    cost_model_stress_query,
    database_for,
    schema_for,
    sgf_query,
)
from repro.workloads.scaling import ScaledEnvironment


class TestGenerators:
    def test_guard_relation_shape(self):
        rel = generate_guard("R", 200, arity=4, seed=1)
        assert len(rel) == 200
        assert rel.arity == 4
        assert rel.size_bytes() == 200 * 40

    def test_guard_deterministic(self):
        a = generate_guard("R", 100, seed=3)
        b = generate_guard("R", 100, seed=3)
        assert a.tuples() == b.tuples()

    def test_guard_different_seeds_differ(self):
        a = generate_guard("R", 100, seed=3)
        b = generate_guard("R", 100, seed=4)
        assert a.tuples() != b.tuples()

    def test_conditional_selectivity_controls_match_rate(self):
        guard = generate_guard("R", 1000, arity=1, seed=5)
        for selectivity in (0.1, 0.5, 0.9):
            conditional = generate_conditional(
                "S", 1000, guard_tuples=1000, selectivity=selectivity, seed=5
            )
            values = {row[0] for row in conditional}
            matched = sum(1 for row in guard if row[0] in values)
            assert matched / len(guard) == pytest.approx(selectivity, abs=0.08)

    def test_conditional_cardinality_reached(self):
        conditional = generate_conditional("S", 500, guard_tuples=100, selectivity=0.2)
        assert len(conditional) == 500

    def test_conditional_invalid_selectivity(self):
        with pytest.raises(ValueError):
            generate_conditional("S", 10, guard_tuples=10, selectivity=1.5)

    def test_conditional_constant_columns(self):
        conditional = generate_conditional(
            "S", 50, guard_tuples=50, arity=2, constant_columns={1: "c"}
        )
        assert all(row[1] == "c" for row in conditional)

    def test_generate_database(self):
        db = generate_database(
            guards={"R": 4}, conditionals={"S": 1, "T": 1}, guard_tuples=100
        )
        assert set(db.relation_names()) == {"R", "S", "T"}
        assert len(db["R"]) == 100

    def test_workload_scale(self):
        scale = WorkloadScale(factor=1e-4)
        assert scale.guard_tuples == 10_000
        assert scale.conditional_tuples == 10_000


class TestExperimentQueries:
    @pytest.mark.parametrize("query_id", BSGF_QUERY_IDS)
    def test_bsgf_queries_validate_and_evaluate(self, query_id):
        queries = bsgf_query_set(query_id)
        db = database_for(queries, guard_tuples=60, selectivity=0.5, seed=1)
        for query in queries:
            out = evaluate_bsgf(query, db)
            assert out.arity == max(1, len(query.projection))

    def test_a_queries_have_four_conditionals(self):
        for query_id in ("A1", "A2", "A3"):
            (query,) = bsgf_query_set(query_id)
            assert len(query.conditional_atoms) == 4

    def test_a2_shares_conditional_relation_name(self):
        (query,) = bsgf_query_set("A2")
        assert query.conditional_relation_names == frozenset({"S"})

    def test_a3_shares_join_key(self):
        (query,) = bsgf_query_set("A3")
        assert query.shares_join_key()
        (a1,) = bsgf_query_set("A1")
        assert not a1.shares_join_key()

    def test_a4_and_a5_are_query_sets(self):
        assert len(bsgf_query_set("A4")) == 2
        assert len(bsgf_query_set("A5")) == 2
        a5 = bsgf_query_set("A5")
        assert a5[0].conditional_relation_names == a5[1].conditional_relation_names

    def test_b1_is_large_conjunction(self):
        (query,) = bsgf_query_set("B1")
        assert len(query.conditional_atoms) == 16
        assert query.condition.is_pure_conjunction()

    def test_b2_is_disjunctive_single_key(self):
        (query,) = bsgf_query_set("B2")
        assert query.condition.uses_disjunction()
        assert query.condition.uses_negation()
        assert query.shares_join_key()

    def test_unknown_query_id(self):
        with pytest.raises(KeyError):
            bsgf_query_set("A9")
        with pytest.raises(KeyError):
            sgf_query("C9")

    @pytest.mark.parametrize("query_id", SGF_QUERY_IDS)
    def test_sgf_queries_validate(self, query_id):
        query = sgf_query(query_id)
        assert isinstance(query, SGFQuery)
        assert query.intermediate_names, "C-queries must be nested"

    def test_c_query_database_excludes_intermediates(self):
        query = sgf_query("C2")
        db = database_for(query, guard_tuples=50)
        assert not any(name.startswith("Z") for name in db.relation_names())

    def test_a3_family_sizes(self):
        (two,) = a3_family(2)
        (sixteen,) = a3_family(16)
        assert len(two.conditional_atoms) == 2
        assert len(sixteen.conditional_atoms) == 16
        assert sixteen.shares_join_key()
        with pytest.raises(ValueError):
            a3_family(0)

    def test_cost_model_stress_query(self):
        (query,) = cost_model_stress_query(groups=4, keys=12)
        assert len(query.conditional_atoms) == 48
        assert query.guard.arity == 12

    def test_schema_for_splits_guards_and_conditionals(self):
        queries = bsgf_query_set("A1")
        guards, conditionals = schema_for(queries)
        assert guards == {"R": 4}
        assert conditionals == {"S": 1, "T": 1, "U": 1, "V": 1}

    def test_schema_for_excludes_produced(self):
        query = sgf_query("C2")
        guards, conditionals = schema_for(
            list(query.subqueries), produced=query.output_names
        )
        assert not any(name.startswith("Z") for name in guards)
        assert not any(name.startswith("Z") for name in conditionals)


class TestScaledEnvironment:
    def test_scaling_preserves_cost_ratios(self):
        env = ScaledEnvironment(scale=1e-3)
        base = ScaledEnvironment(scale=1.0)
        assert env.constants.hdfs_read == pytest.approx(base.constants.hdfs_read * 1e3)
        assert env.constants.map_buffer_mb == pytest.approx(
            base.constants.map_buffer_mb * 1e-3
        )
        assert env.settings.split_mb == pytest.approx(base.settings.split_mb * 1e-3)
        assert env.constants.job_overhead == base.constants.job_overhead

    def test_scaled_costs_match_paper_scale(self):
        """A job over scaled-down data costs the same simulated seconds."""
        from repro.cost.formulas import MapPartition, job_cost

        scale = 1e-3
        env = ScaledEnvironment(scale=scale)
        full = ScaledEnvironment(scale=1.0)
        partition_full = MapPartition(
            input_mb=4096, intermediate_mb=5000, records=100_000_000, mappers=32
        )
        partition_scaled = MapPartition(
            input_mb=4096 * scale,
            intermediate_mb=5000 * scale,
            records=int(100_000_000 * scale),
            mappers=32,
        )
        cost_full = job_cost([partition_full], 1000, 20, full.constants)
        cost_scaled = job_cost([partition_scaled], 1000 * scale, 20, env.constants)
        assert cost_scaled == pytest.approx(cost_full, rel=1e-6)

    def test_engine_configuration(self):
        env = ScaledEnvironment(scale=1e-4, nodes=5)
        engine = env.engine()
        assert engine.cluster.nodes == 5
        assert engine.cluster.total_slots == 50
        assert engine.mb_per_reducer_intermediate == pytest.approx(256 * 1e-4)

    def test_with_nodes(self):
        env = ScaledEnvironment(scale=1e-4, nodes=10)
        assert env.with_nodes(20).cluster.total_slots == 200

    def test_guard_tuples(self):
        env = ScaledEnvironment(scale=1e-4)
        assert env.guard_tuples() == 10_000
        assert env.guard_tuples(200_000_000) == 20_000
        assert env.workload.guard_tuples == 10_000

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ScaledEnvironment(scale=0)

    def test_baseline_engine_reducer_allocation(self):
        env = ScaledEnvironment(scale=1e-3)
        engine = env.baseline_engine(1024.0)
        assert engine.mb_per_reducer_input == pytest.approx(1024 * 1e-3)
