"""Unit tests for the sampling-based statistics catalog."""

import pytest

from repro.cost.estimates import RelationStats, StatisticsCatalog
from repro.model.atoms import Atom
from repro.model.database import Database
from repro.model.terms import Constant, Variable

X, Y = Variable("x"), Variable("y")


@pytest.fixture
def db():
    return Database.from_dict(
        {
            "R": [(i, i % 4) for i in range(100)],
            "S": [(i,) for i in range(50)],        # matches x in 0..49
            "Empty": [(999, 999)],
        }
    )


class TestRelationStats:
    def test_scaled(self):
        stats = RelationStats("R", 100, 2, 10.0, 10)
        half = stats.scaled(0.5)
        assert half.tuples == 50
        assert half.size_mb == pytest.approx(5.0)

    def test_scaled_clamps(self):
        stats = RelationStats("R", 100, 2, 10.0, 10)
        assert stats.scaled(2.0).tuples == 100
        assert stats.scaled(-1.0).tuples == 0

    def test_tuple_size(self):
        assert RelationStats("R", 1, 3, 0.1, 10).tuple_size_bytes == 30


class TestCatalogRelations:
    def test_relation_stats_collected(self, db):
        catalog = StatisticsCatalog(db)
        stats = catalog.relation_stats("R")
        assert stats.tuples == 100
        assert stats.arity == 2
        assert stats.size_mb == pytest.approx(db["R"].size_mb())

    def test_missing_relation(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.relation_stats("missing") is None
        assert not catalog.has_relation("missing")

    def test_register_estimate(self, db):
        catalog = StatisticsCatalog(db)
        catalog.register_estimate(RelationStats("Z", 42, 1, 0.001, 10))
        assert catalog.has_relation("Z")
        assert catalog.atom_count(Atom.of("Z", "x")) == 42

    def test_sample_is_deterministic(self, db):
        a = StatisticsCatalog(db, sample_size=10, seed=7)
        b = StatisticsCatalog(db, sample_size=10, seed=7)
        assert a.sample("R") == b.sample("R")

    def test_sample_of_small_relation_is_everything(self, db):
        catalog = StatisticsCatalog(db, sample_size=1000)
        assert len(catalog.sample("S")) == 50

    def test_sample_of_missing_relation_empty(self, db):
        assert StatisticsCatalog(db).sample("missing") == []


class TestAtomEstimates:
    def test_unrestricted_atom_fraction_is_one(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.atom_fraction(Atom.of("R", "x", "y")) == 1.0

    def test_constant_atom_fraction_estimated(self, db):
        catalog = StatisticsCatalog(db, sample_size=1000)
        fraction = catalog.atom_fraction(Atom("R", (X, Constant(0))))
        assert fraction == pytest.approx(0.25, abs=0.05)

    def test_never_matching_constant(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.atom_fraction(Atom("R", (X, Constant("nope")))) == 0.0

    def test_atom_count_and_size(self, db):
        catalog = StatisticsCatalog(db)
        atom = Atom.of("S", "x")
        assert catalog.atom_count(atom) == 50
        assert catalog.atom_size_mb(atom) == pytest.approx(db["S"].size_mb())

    def test_atom_count_missing_relation(self, db):
        assert StatisticsCatalog(db).atom_count(Atom.of("Q", "x")) == 0.0

    def test_atom_tuple_bytes(self, db):
        catalog = StatisticsCatalog(db)
        assert catalog.atom_tuple_bytes(Atom.of("R", "x", "y")) == 20
        assert catalog.atom_tuple_bytes(Atom.of("Missing", "x", "y", "z")) == 30


class TestSelectivity:
    def test_semijoin_selectivity_estimate(self, db):
        catalog = StatisticsCatalog(db, sample_size=1000)
        sel = catalog.semijoin_selectivity(Atom.of("R", "x", "y"), Atom.of("S", "x"))
        assert sel == pytest.approx(0.5, abs=0.05)

    def test_selectivity_zero_when_nothing_conforms(self, db):
        catalog = StatisticsCatalog(db)
        conditional = Atom("S", (Constant("never"),))
        assert catalog.semijoin_selectivity(Atom.of("R", "x", "y"), conditional) in (
            0.0, 1.0
        )

    def test_selectivity_disjoint_variables_upper_bound(self, db):
        catalog = StatisticsCatalog(db)
        sel = catalog.semijoin_selectivity(Atom.of("R", "x", "y"), Atom.of("S", "q"))
        assert sel == 1.0

    def test_semijoin_output_upper_bound(self, db):
        catalog = StatisticsCatalog(db)
        guard = Atom.of("R", "x", "y")
        conditional = Atom.of("S", "x")
        upper = catalog.semijoin_output_mb(guard, conditional, (X, Y))
        with_sel = catalog.semijoin_output_mb(
            guard, conditional, (X, Y), use_selectivity=True
        )
        assert upper == pytest.approx(db["R"].size_mb())
        assert with_sel < upper

    def test_projection_width_scales_output(self, db):
        catalog = StatisticsCatalog(db)
        guard = Atom.of("R", "x", "y")
        conditional = Atom.of("S", "x")
        narrow = catalog.semijoin_output_mb(guard, conditional, (X,))
        wide = catalog.semijoin_output_mb(guard, conditional, (X, Y))
        assert narrow == pytest.approx(wide / 2)
