"""Unit tests for the wave scheduler and the cluster model."""

import pytest

from repro.cost.constants import HadoopSettings
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.scheduler import makespan, schedule_report, wave_count


class TestMakespan:
    def test_empty(self):
        assert makespan([], 10) == 0.0

    def test_single_slot_sums(self):
        assert makespan([1, 2, 3], 1) == 6.0

    def test_enough_slots_gives_longest_task(self):
        assert makespan([5, 1, 1, 1], 10) == 5.0

    def test_two_slots(self):
        # LPT: 3 -> slot A, 2 -> slot B, 2 -> slot B(4) vs A(3): to A -> 5? LPT puts to min load.
        assert makespan([3, 2, 2], 2) == 4.0

    def test_never_below_work_over_slots(self):
        durations = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        slots = 3
        span = makespan(durations, slots)
        assert span >= sum(durations) / slots - 1e-9
        assert span >= max(durations)

    def test_zero_durations_ignored(self):
        assert makespan([0.0, 0.0, 2.0], 4) == 2.0

    def test_invalid_slots(self):
        with pytest.raises(ValueError):
            makespan([1.0], 0)


class TestWaves:
    def test_wave_count(self):
        assert wave_count(0, 10) == 0
        assert wave_count(10, 10) == 1
        assert wave_count(11, 10) == 2

    def test_wave_count_invalid_slots(self):
        with pytest.raises(ValueError):
            wave_count(5, 0)

    def test_schedule_report(self):
        span, work, utilisation = schedule_report([2.0, 2.0], 2)
        assert span == 2.0
        assert work == 4.0
        assert utilisation == pytest.approx(1.0)

    def test_schedule_report_empty(self):
        span, work, utilisation = schedule_report([], 2)
        assert span == 0.0 and work == 0.0 and utilisation == 0.0


class TestClusterConfig:
    def test_paper_cluster(self):
        cluster = ClusterConfig.paper_cluster()
        assert cluster.nodes == 10
        assert cluster.containers_per_node == 10
        assert cluster.total_slots == 100
        assert cluster.split_mb == 128.0

    def test_with_nodes(self):
        cluster = ClusterConfig.paper_cluster().with_nodes(20)
        assert cluster.total_slots == 200

    def test_explicit_containers(self):
        cluster = ClusterConfig(nodes=4, containers_per_node=3)
        assert cluster.total_slots == 12

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=0)

    def test_invalid_containers(self):
        with pytest.raises(ValueError):
            ClusterConfig(nodes=1, containers_per_node=0)

    def test_settings_drive_container_count(self):
        settings = HadoopSettings(node_memory_mb=8192, min_allocation_mb=4096)
        cluster = ClusterConfig(nodes=2, settings=settings)
        assert cluster.containers_per_node == 2

    def test_str(self):
        assert "total_slots=100" in str(ClusterConfig.paper_cluster())
