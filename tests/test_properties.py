"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.chain import to_dnf
from repro.core.greedy_sgf import greedy_multiway_sort
from repro.core.msj import MSJJob
from repro.core.options import GumboOptions
from repro.core.plan import build_sequential_program, build_two_round_program
from repro.cost.constants import CostConstants
from repro.cost.formulas import MapPartition, job_cost
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.scheduler import makespan
from repro.model.atoms import Atom
from repro.model.database import Database
from repro.model.relation import Relation
from repro.model.terms import Constant, Variable
from repro.query.bsgf import BSGFQuery
from repro.query.conditions import And, AtomCondition, Not, Or
from repro.query.dependency import DependencyGraph
from repro.query.parser import parse_bsgf
from repro.query.reference import evaluate_bsgf, evaluate_semijoin
from repro.query.sgf import SGFQuery

# Shared settings: keep example counts small so the whole file stays fast.
FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

X, Y = Variable("x"), Variable("y")

values = st.integers(min_value=0, max_value=5)
rows2 = st.lists(st.tuples(values, values), max_size=12)
rows1 = st.lists(st.tuples(values), max_size=8)


# -- atoms ---------------------------------------------------------------------------


@st.composite
def atoms(draw):
    relation = draw(st.sampled_from(["R", "S", "T"]))
    arity = draw(st.integers(min_value=1, max_value=3))
    terms = tuple(
        draw(
            st.one_of(
                st.sampled_from([Variable("x"), Variable("y"), Variable("z")]),
                st.builds(Constant, values),
            )
        )
        for _ in range(arity)
    )
    return Atom(relation, terms)


@FAST
@given(atoms(), st.lists(values, min_size=0, max_size=4))
def test_match_and_conforms_agree(atom, row):
    row = tuple(row)
    binding = atom.match(row)
    assert (binding is not None) == atom.conforms(row)
    if binding is not None:
        # Re-substituting the binding reproduces the row.
        assert atom.substitute(binding) == row


@FAST
@given(atoms(), st.lists(values, min_size=0, max_size=4))
def test_projection_values_come_from_binding(atom, row):
    row = tuple(row)
    binding = atom.match(row)
    if binding is None:
        return
    variables = atom.variables
    projected = atom.project(row, variables)
    assert projected == tuple(binding[v] for v in variables)


# -- conditions -----------------------------------------------------------------------


@st.composite
def conditions(draw, depth=3):
    leaf = st.builds(
        AtomCondition,
        st.sampled_from(
            [Atom.of("S", "x"), Atom.of("T", "y"), Atom.of("U", "x"), Atom.of("V", "y")]
        ),
    )
    if depth == 0:
        return draw(leaf)
    return draw(
        st.one_of(
            leaf,
            st.builds(Not, conditions(depth=depth - 1)),
            st.builds(And, conditions(depth=depth - 1), conditions(depth=depth - 1)),
            st.builds(Or, conditions(depth=depth - 1), conditions(depth=depth - 1)),
        )
    )


@FAST
@given(conditions(), st.sets(st.integers(min_value=0, max_value=3)))
def test_double_negation_preserves_evaluation(condition, true_indices):
    ordered = condition.atoms()

    def assignment(a):
        return ordered.index(a) in true_indices

    assert condition.evaluate(assignment) == Not(Not(condition)).evaluate(assignment)


@FAST
@given(conditions(), st.sets(st.integers(min_value=0, max_value=3)))
def test_dnf_rewriting_preserves_evaluation(condition, true_indices):
    ordered = condition.atoms()
    true_atoms = {a for i, a in enumerate(ordered) if i in true_indices}
    direct = condition.evaluate(lambda a: a in true_atoms)
    via_dnf = any(
        all((lit.atom in true_atoms) == lit.positive for lit in disjunct)
        for disjunct in to_dnf(condition)
    )
    assert direct == via_dnf


@FAST
@given(conditions())
def test_condition_str_reparses_equivalently(condition):
    from repro.query.parser import parse_condition

    reparsed = parse_condition(str(condition))
    ordered = condition.atoms()
    assert reparsed.atoms() == ordered
    for mask in range(2 ** min(len(ordered), 4)):
        true_atoms = {a for i, a in enumerate(ordered) if mask & (1 << i)}

        def assignment(a, true_atoms=true_atoms):
            return a in true_atoms

        assert condition.evaluate(assignment) == reparsed.evaluate(assignment)


# -- scheduler and cost model -----------------------------------------------------------


@FAST
@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=30),
    st.integers(min_value=1, max_value=16),
)
def test_makespan_bounds(durations, slots):
    span = makespan(durations, slots)
    work = sum(d for d in durations if d > 0)
    longest = max([d for d in durations if d > 0], default=0.0)
    assert span >= longest - 1e-9
    assert span >= work / slots - 1e-9
    assert span <= work + 1e-9


@FAST
@given(
    st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=1, max_size=20),
    st.integers(min_value=1, max_value=8),
)
def test_makespan_monotone_in_slots(durations, slots):
    assert makespan(durations, slots + 1) <= makespan(durations, slots) + 1e-9


@FAST
@given(
    st.floats(min_value=0.0, max_value=10_000.0),
    st.floats(min_value=0.0, max_value=10_000.0),
    st.integers(min_value=0, max_value=10_000_000),
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_job_cost_nonnegative_and_monotone_in_input(
    input_mb, intermediate_mb, records, mappers, reducers
):
    constants = CostConstants.paper_values()
    partition = MapPartition(input_mb, intermediate_mb, records, mappers)
    bigger = MapPartition(input_mb * 2 + 1, intermediate_mb, records, mappers)
    cost = job_cost([partition], 10.0, reducers, constants)
    cost_bigger = job_cost([bigger], 10.0, reducers, constants)
    assert cost >= 0.0
    assert cost_bigger >= cost


# -- MSJ vs reference semantics -----------------------------------------------------------


@FAST
@given(rows2, rows1, rows1)
def test_msj_matches_reference_on_random_databases(r_rows, s_rows, t_rows):
    db = Database()
    db.add_relation(Relation.from_tuples("R", r_rows, arity=2))
    db.add_relation(Relation.from_tuples("S", s_rows, arity=1))
    db.add_relation(Relation.from_tuples("T", t_rows, arity=1))
    guard = Atom.of("R", "x", "y")
    specs = BSGFQuery(
        "Z",
        (X, Y),
        guard,
        And(AtomCondition(Atom.of("S", "x")), AtomCondition(Atom.of("T", "y"))),
    ).semijoin_specs()
    engine = MapReduceEngine()
    job = MSJJob("msj", specs, GumboOptions(), emit_projection=True)
    outputs = engine.run_job(job, db).outputs
    for spec in specs:
        reference = evaluate_semijoin(
            spec.guard, spec.conditional, spec.projection, db, spec.output
        )
        assert outputs[spec.output].tuples() == reference.tuples()


# -- strategies vs reference on random queries ------------------------------------------------


@FAST
@given(conditions(depth=2), rows2, rows1, rows1)
def test_parallel_and_sequential_plans_match_reference(
    condition, r_rows, s_rows, t_rows
):
    db = Database()
    db.add_relation(Relation.from_tuples("R", r_rows, arity=2))
    db.add_relation(Relation.from_tuples("S", s_rows, arity=1))
    db.add_relation(Relation.from_tuples("T", t_rows, arity=1))
    db.add_relation(Relation.from_tuples("U", [(0,), (3,)], arity=1))
    db.add_relation(Relation.from_tuples("V", [(1,)], arity=1))
    query = BSGFQuery("Z", (X, Y), Atom.of("R", "x", "y"), condition)
    reference = frozenset(evaluate_bsgf(query, db).tuples())

    engine = MapReduceEngine()
    two_round = build_two_round_program([query], [[s] for s in query.semijoin_specs()])
    assert frozenset(
        engine.run_program(two_round, db).outputs["Z"].tuples()
    ) == reference

    sequential = build_sequential_program(query)
    assert frozenset(
        engine.run_program(sequential, db).outputs["Z"].tuples()
    ) == reference


# -- dependency graphs -------------------------------------------------------------------------


@st.composite
def random_sgf_queries(draw):
    """Random SGF queries: each subquery guards a base relation or an earlier output."""
    count = draw(st.integers(min_value=1, max_value=6))
    subqueries = []
    for index in range(count):
        candidates = ["R", "G"] + [f"Z{j}" for j in range(index)]
        guard_name = draw(st.sampled_from(candidates))
        conditional_name = draw(
            st.sampled_from(["S", "T", "U"] + [f"Z{j}" for j in range(index)])
        )
        subqueries.append(
            BSGFQuery(
                f"Z{index}",
                (X, Y),
                Atom.of(guard_name, "x", "y"),
                AtomCondition(Atom.of(conditional_name, "x")),
            )
        )
    return SGFQuery(tuple(subqueries))


@FAST
@given(random_sgf_queries())
def test_greedy_multiway_sort_is_always_valid(query):
    graph = DependencyGraph(query)
    groups = greedy_multiway_sort(graph)
    assert graph.is_valid_multiway_sort(groups)
    assert sorted(n for g in groups for n in g) == sorted(graph.nodes)


@FAST
@given(random_sgf_queries())
def test_levels_are_valid_multiway_sorts(query):
    graph = DependencyGraph(query)
    assert graph.is_valid_multiway_sort(graph.levels())
    assert graph.is_valid_multiway_sort([[n] for n in graph.topological_order()])


# -- parser round trip ---------------------------------------------------------------------------


@FAST
@given(conditions(depth=2))
def test_bsgf_str_round_trip(condition):
    query = BSGFQuery("Z", (X, Y), Atom.of("R", "x", "y"), condition)
    assert parse_bsgf(str(query)) == query
