"""Parser ↔ pretty-printer round-trip tests (repro.query.unparse).

The unparser's contract is exact: ``parse_sgf(unparse_sgf(q)) == q`` for
every query expressible in the concrete syntax, and :class:`UnparseError`
for everything else.  The fuzzer (:mod:`repro.fuzz`) relies on this contract
to embed generated programs in repro scripts as plain text.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.fuzz.generator import FuzzConfig, generate_program
from repro.model.atoms import Atom
from repro.model.terms import Constant, Variable
from repro.query.bsgf import BSGFQuery
from repro.query.conditions import And, AtomCondition, Not, Or, TRUE
from repro.query.parser import parse_bsgf, parse_sgf
from repro.query.unparse import (
    UnparseError,
    unparse_atom,
    unparse_bsgf,
    unparse_condition,
    unparse_constant,
    unparse_sgf,
)

from helpers import nested_sgf_text

FAST = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

X = Variable("x")


def roundtrip_sgf(text: str):
    query = parse_sgf(text)
    assert parse_sgf(query.unparse()) == query
    return query


# -- the paper's verbatim examples ---------------------------------------------------


def test_roundtrip_paper_example_z5():
    roundtrip_sgf(
        "Z5 := SELECT (x, y) FROM R(x, y, 4) "
        "WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));"
    )


def test_roundtrip_paper_example_amazon():
    query = roundtrip_sgf(
        'Z1 := SELECT aut FROM Amaz(ttl, aut, "bad") '
        'WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");'
    )
    # The string constants survive as str values, not identifiers.
    assert Constant("bad") in query[0].guard.constants


def test_roundtrip_nested_sgf_program():
    query = roundtrip_sgf(nested_sgf_text())
    assert len(query) == 3


def test_roundtrip_named_query_needs_name_on_reparse():
    # The concrete syntax does not carry the query name: re-parsing with the
    # original name restores full equality (the documented contract).
    query = parse_sgf("Z := SELECT (x) FROM R(x);", name="C1")
    assert parse_sgf(query.unparse(), name=query.name) == query
    assert parse_sgf(query.unparse()).subqueries == query.subqueries


# -- constants and term edge cases ---------------------------------------------------


def test_roundtrip_quoted_and_numeric_constants():
    roundtrip_sgf("Z := SELECT (x) FROM R(x, -3, 2.5, 'one', \"two\");")


def test_string_constant_quote_styles():
    assert unparse_constant("plain") == '"plain"'
    assert unparse_constant('has"double') == "'has\"double'"
    assert unparse_constant("") == '""'
    # Both quote styles re-parse to the same constant.
    for value in ("plain", 'has"double', "it's"):
        literal = unparse_constant(value)
        query = parse_bsgf(f"Z := SELECT (x) FROM R(x, {literal});")
        assert Constant(value) in query.guard.constants


def test_bare_uppercase_constant_roundtrips_as_string():
    # The parser treats bare uppercase identifiers in term position as string
    # constants; the unparser renders them quoted, which parses back equal.
    query = parse_bsgf("Z := SELECT (x) FROM R(x, Good);")
    assert Constant("Good") in query.guard.constants
    assert parse_bsgf(query.unparse()) == query


@pytest.mark.parametrize(
    "value",
    [
        True,
        False,
        None,
        float("inf"),
        float("nan"),
        1e-20,  # repr uses scientific notation: no NUMBER literal
        'both"quote\'styles',
        (1, 2),
    ],
)
def test_unrepresentable_constants_raise(value):
    with pytest.raises(UnparseError):
        unparse_constant(value)


def test_uppercase_variable_raises():
    with pytest.raises(UnparseError):
        unparse_atom(Atom("R", (Variable("Xbad"),)))


def test_keyword_relation_name_raises():
    with pytest.raises(UnparseError):
        unparse_atom(Atom("SELECT", (X,)))


def test_empty_projection_raises():
    query = BSGFQuery("Z", (X,), Atom.of("R", X), TRUE)
    object.__setattr__(query, "projection", ())
    with pytest.raises(UnparseError):
        unparse_bsgf(query)


def test_true_inside_tree_raises():
    with pytest.raises(UnparseError):
        unparse_condition(And(TRUE, AtomCondition(Atom.of("S", X))))


# -- tree-shape preservation ---------------------------------------------------------


def _leaf(name: str) -> AtomCondition:
    return AtomCondition(Atom.of(name, X))


def test_right_nested_and_keeps_parentheses():
    condition = And(_leaf("S"), And(_leaf("T"), _leaf("U")))
    text = unparse_condition(condition)
    assert text == "S(x) AND (T(x) AND U(x))"
    query = BSGFQuery("Z", (X,), Atom.of("R", X), condition)
    assert parse_bsgf(query.unparse()) == query


def test_left_nested_and_needs_no_parentheses():
    condition = And(And(_leaf("S"), _leaf("T")), _leaf("U"))
    assert unparse_condition(condition) == "S(x) AND T(x) AND U(x)"


def test_or_under_and_parenthesised_but_not_vice_versa():
    assert (
        unparse_condition(And(Or(_leaf("S"), _leaf("T")), _leaf("U")))
        == "(S(x) OR T(x)) AND U(x)"
    )
    assert (
        unparse_condition(Or(And(_leaf("S"), _leaf("T")), _leaf("U")))
        == "S(x) AND T(x) OR U(x)"
    )


def test_double_negation_roundtrips():
    condition = Not(Not(_leaf("S")))
    query = BSGFQuery("Z", (X,), Atom.of("R", X), condition)
    assert parse_bsgf(query.unparse()) == query
    assert unparse_condition(condition) == "NOT NOT S(x)"


def test_not_over_composite_is_parenthesised():
    condition = Not(And(_leaf("S"), _leaf("T")))
    assert unparse_condition(condition) == "NOT (S(x) AND T(x))"
    query = BSGFQuery("Z", (X,), Atom.of("R", X), condition)
    assert parse_bsgf(query.unparse()) == query


# -- property: every fuzzer-generated program round-trips -----------------------------


@given(st.integers(min_value=0, max_value=10_000))
@FAST
def test_random_programs_roundtrip(seed):
    rng = random.Random(seed)
    program = generate_program(rng, FuzzConfig(max_statements=5))
    text = program.unparse()
    assert parse_sgf(text) == program
    # Unparsing is stable: a second round-trip produces the same text.
    assert parse_sgf(text).unparse() == text


@given(st.integers(min_value=0, max_value=10_000))
@FAST
def test_unparse_matches_module_function(seed):
    rng = random.Random(seed)
    program = generate_program(rng, FuzzConfig(max_statements=3))
    assert program.unparse() == unparse_sgf(program)
    for statement in program:
        assert statement.unparse() == unparse_bsgf(statement)
