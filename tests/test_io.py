"""Tests for CSV/TSV loading and saving of relations and databases."""

import os

import pytest

from repro.io import (
    DataFormatError,
    load_database,
    load_relation,
    save_database,
    save_relation,
)
from repro.model.database import Database
from repro.model.relation import Relation


class TestRelationIO:
    def test_round_trip(self, tmp_path):
        relation = Relation.from_tuples("R", [(1, "a"), (2, "b"), (3, 1.5)])
        path = str(tmp_path / "R.csv")
        save_relation(relation, path)
        loaded = load_relation(path)
        assert loaded.name == "R"
        assert loaded.arity == 2
        assert loaded.tuples() == relation.tuples()

    def test_values_parsed_as_numbers(self, tmp_path):
        path = tmp_path / "S.csv"
        path.write_text("1,2.5,hello\n")
        loaded = load_relation(str(path))
        assert loaded.tuples() == {(1, 2.5, "hello")}

    def test_tsv_delimiter_inferred(self, tmp_path):
        path = tmp_path / "S.tsv"
        path.write_text("1\t2\n3\t4\n")
        loaded = load_relation(str(path))
        assert loaded.tuples() == {(1, 2), (3, 4)}

    def test_header_skipped_when_requested(self, tmp_path):
        path = tmp_path / "S.csv"
        path.write_text("x,y\n1,2\n")
        loaded = load_relation(str(path), has_header=True)
        assert loaded.tuples() == {(1, 2)}

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "S.csv"
        path.write_text("1,2\n\n3,4\n")
        assert len(load_relation(str(path))) == 2

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "S.csv"
        path.write_text("\n")
        with pytest.raises(DataFormatError):
            load_relation(str(path))

    def test_ragged_rows_rejected(self, tmp_path):
        path = tmp_path / "S.csv"
        path.write_text("1,2\n3\n")
        with pytest.raises(DataFormatError):
            load_relation(str(path))

    def test_explicit_name_overrides_filename(self, tmp_path):
        path = tmp_path / "whatever.csv"
        path.write_text("1\n")
        assert load_relation(str(path), name="S").name == "S"


class TestDatabaseIO:
    def test_directory_round_trip(self, tmp_path):
        db = Database.from_dict({"R": [(1, 2)], "S": [(3,)]})
        directory = str(tmp_path / "data")
        paths = save_database(db, directory)
        assert len(paths) == 2
        loaded = load_database(directory)
        assert set(loaded.relation_names()) == {"R", "S"}
        assert loaded["R"].tuples() == {(1, 2)}
        assert loaded["S"].tuples() == {(3,)}

    def test_mapping_source(self, tmp_path):
        path = tmp_path / "file.csv"
        path.write_text("1,2\n")
        db = load_database({"Renamed": str(path)})
        assert "Renamed" in db

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DataFormatError):
            load_database(str(tmp_path / "missing"))

    def test_empty_directory_rejected(self, tmp_path):
        directory = tmp_path / "empty"
        directory.mkdir()
        with pytest.raises(DataFormatError):
            load_database(str(directory))

    def test_save_selected_relations(self, tmp_path):
        db = Database.from_dict({"R": [(1,)], "S": [(2,)]})
        paths = save_database(db, str(tmp_path), names=["S"])
        assert len(paths) == 1
        assert os.path.basename(paths[0]) == "S.csv"

    def test_query_over_loaded_database(self, tmp_path):
        """End to end: save, load, and run Gumbo on the loaded data."""
        from repro import Gumbo

        db = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
        directory = str(tmp_path / "db")
        save_database(db, directory)
        loaded = load_database(directory)
        result = Gumbo().execute(
            "Z := SELECT (x, y) FROM R(x, y) WHERE S(x);", loaded
        )
        assert set(result.output().tuples()) == {(1, 2)}
