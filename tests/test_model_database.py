"""Unit tests for repro.model.database."""

import pytest

from repro.model.atoms import Atom, Fact
from repro.model.database import Database, UnknownRelationError
from repro.model.relation import Relation, SchemaError


class TestConstruction:
    def test_from_dict(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
        assert set(db.relation_names()) == {"R", "S"}
        assert len(db["R"]) == 1

    def test_add_relation_replaces(self):
        db = Database()
        db.add_relation(Relation.from_tuples("R", [(1,)]))
        db.add_relation(Relation.from_tuples("R", [(2,), (3,)]))
        assert len(db["R"]) == 2

    def test_ensure_relation_creates_empty(self):
        db = Database()
        rel = db.ensure_relation("R", 3)
        assert rel.arity == 3
        assert len(db["R"]) == 0

    def test_ensure_relation_returns_existing(self):
        db = Database.from_dict({"R": [(1, 2)]})
        assert db.ensure_relation("R", 2) is db["R"]

    def test_ensure_relation_arity_conflict(self):
        db = Database.from_dict({"R": [(1, 2)]})
        with pytest.raises(SchemaError):
            db.ensure_relation("R", 3)


class TestAccess:
    def test_getitem_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            Database()["missing"]

    def test_get_returns_none(self):
        assert Database().get("missing") is None

    def test_contains_len_iter(self):
        db = Database.from_dict({"R": [(1,)], "S": [(2,)]})
        assert "R" in db and "missing" not in db
        assert len(db) == 2
        assert [rel.name for rel in db] == ["R", "S"]

    def test_relation_names_sorted(self):
        db = Database.from_dict({"B": [(1,)], "A": [(1,)], "C": [(1,)]})
        assert db.relation_names() == ["A", "B", "C"]


class TestFactView:
    def test_facts_iterates_all(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(3,)]})
        facts = set(db.facts())
        assert facts == {Fact("R", (1, 2)), Fact("S", (3,))}

    def test_facts_restricted(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(3,)]})
        assert set(db.facts(["S"])) == {Fact("S", (3,))}

    def test_contains_fact(self):
        db = Database.from_dict({"R": [(1, 2)]})
        assert db.contains_fact(Fact("R", (1, 2)))
        assert not db.contains_fact(Fact("R", (2, 1)))
        assert not db.contains_fact(Fact("Q", (1, 2)))

    def test_matching_facts(self):
        db = Database.from_dict({"R": [(1, 1), (1, 2)]})
        atom = Atom.of("R", "x", "x")
        assert list(db.matching_facts(atom)) == [Fact("R", (1, 1))]

    def test_matching_facts_missing_relation(self):
        assert list(Database().matching_facts(Atom.of("R", "x"))) == []


class TestSizesAndCopy:
    def test_size_accounting(self):
        db = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
        assert db.size_bytes() == 20 + 10
        assert db.size_bytes(["S"]) == 10
        assert db.size_mb() == pytest.approx(30 / (1024 * 1024))

    def test_copy_is_independent(self):
        db = Database.from_dict({"R": [(1, 2)]})
        clone = db.copy()
        clone["R"].add((3, 4))
        assert len(db["R"]) == 1
        assert len(clone["R"]) == 2

    def test_summary(self):
        db = Database.from_dict({"R": [(1, 2)]})
        (name, count, size_mb), = db.summary()
        assert name == "R" and count == 1 and size_mb > 0

    def test_repr(self):
        db = Database.from_dict({"R": [(1, 2)]})
        assert "R[1]" in repr(db)
