"""Unit tests for the SQL-like query parser."""

import pytest

from repro.model.atoms import Atom
from repro.model.terms import Constant, Variable
from repro.query.conditions import And, Not, Or
from repro.query.parser import (
    ParseError,
    parse_atom,
    parse_bsgf,
    parse_condition,
    parse_sgf,
)

X, Y = Variable("x"), Variable("y")


class TestAtomsAndTerms:
    def test_parse_atom_with_variables(self):
        assert parse_atom("R(x, y)") == Atom.of("R", "x", "y")

    def test_parse_atom_with_number_constant(self):
        atom = parse_atom("R(x, 4)")
        assert atom.terms[1] == Constant(4)

    def test_parse_atom_with_negative_and_float(self):
        atom = parse_atom("R(-3, 1.5)")
        assert atom.terms == (Constant(-3), Constant(1.5))

    def test_parse_atom_with_string_constant(self):
        atom = parse_atom('Amaz(ttl, aut, "bad")')
        assert atom.terms[2] == Constant("bad")

    def test_single_quoted_string(self):
        atom = parse_atom("R('hello')")
        assert atom.terms[0] == Constant("hello")

    def test_uppercase_identifier_is_constant(self):
        atom = parse_atom("R(x, Bad)")
        assert atom.terms[1] == Constant("Bad")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_atom("R(x) extra")


class TestConditions:
    def test_precedence_and_binds_tighter_than_or(self):
        cond = parse_condition("S(x) OR T(y) AND U(z)")
        assert isinstance(cond, Or)
        assert isinstance(cond.right, And)

    def test_parentheses_override_precedence(self):
        cond = parse_condition("(S(x) OR T(y)) AND U(z)")
        assert isinstance(cond, And)
        assert isinstance(cond.left, Or)

    def test_not_binds_tightest(self):
        cond = parse_condition("NOT S(x) AND T(y)")
        assert isinstance(cond, And)
        assert isinstance(cond.left, Not)

    def test_double_negation(self):
        cond = parse_condition("NOT NOT S(x)")
        assert isinstance(cond, Not)
        assert isinstance(cond.operand, Not)

    def test_keywords_case_insensitive(self):
        cond = parse_condition("S(x) and not T(y)")
        assert isinstance(cond, And)
        assert isinstance(cond.right, Not)


class TestStatements:
    def test_simple_statement(self):
        query = parse_bsgf("Z := SELECT x FROM R(x, y);")
        assert query.output == "Z"
        assert query.projection == (X,)
        assert query.guard == Atom.of("R", "x", "y")
        assert not query.has_condition

    def test_parenthesised_select_list(self):
        query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
        assert query.projection == (X, Y)

    def test_unparenthesised_multi_select(self):
        query = parse_bsgf("Z := SELECT x, y FROM R(x, y);")
        assert query.projection == (X, Y)

    def test_paper_example_z5(self):
        text = (
            "Z5 := SELECT (x, y) FROM R(x, y, 4) "
            "WHERE (S(1, x) AND NOT S(y, 10)) OR (NOT S(1, x) AND S(y, 10));"
        )
        query = parse_bsgf(text)
        assert query.guard.terms[2] == Constant(4)
        assert len(query.conditional_atoms) == 2

    def test_paper_example_bookstore(self):
        text = """
        Z1 := SELECT aut FROM Amaz(ttl, aut, "bad")
              WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
        Z2 := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Z1(aut);
        """
        query = parse_sgf(text)
        assert query.output_names == ("Z1", "Z2")
        assert query.intermediate_names == frozenset({"Z1"})

    def test_comments_are_ignored(self):
        query = parse_bsgf("-- a comment\nZ := SELECT x FROM R(x); -- trailing\n")
        assert query.output == "Z"

    def test_missing_semicolon_rejected(self):
        with pytest.raises(ParseError):
            parse_bsgf("Z := SELECT x FROM R(x)")

    def test_missing_from_rejected(self):
        with pytest.raises(ParseError):
            parse_bsgf("Z := SELECT x R(x);")

    def test_uppercase_select_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_bsgf("Z := SELECT X FROM R(x);")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_sgf("   ")

    def test_parse_bsgf_rejects_multiple_statements(self):
        with pytest.raises(ParseError):
            parse_bsgf("Z1 := SELECT x FROM R(x); Z2 := SELECT x FROM R(x);")

    def test_parse_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_bsgf("Z := SELECT x FROM\n  R(x ? y);")
        assert "line 2" in str(excinfo.value)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            parse_bsgf("Z := SELECT x FROM R(x) £;")


class TestRoundTrip:
    def test_str_of_parsed_query_reparses_to_same_query(self):
        text = (
            "Z := SELECT (x, y) FROM R(x, y) "
            "WHERE (S(x) AND NOT T(y)) OR U(x);"
        )
        query = parse_bsgf(text)
        again = parse_bsgf(str(query))
        assert again == query

    def test_sgf_round_trip(self):
        text = """
        Z1 := SELECT (x, y) FROM R(x, y) WHERE S(x);
        Z2 := SELECT (x, y) FROM Z1(x, y) WHERE T(y);
        """
        query = parse_sgf(text)
        again = parse_sgf(str(query))
        assert again.output_names == query.output_names
        assert list(again.subqueries) == list(query.subqueries)
