"""Unit tests for repro.query.sgf."""

import pytest

from repro.model.atoms import Atom
from repro.model.terms import Variable
from repro.query.bsgf import BSGFQuery
from repro.query.conditions import AtomCondition, atom
from repro.query.sgf import SGFQuery, SGFValidationError

X, Y = Variable("x"), Variable("y")


def bsgf(output, guard_name, cond_name=None, cond_vars=("x",)):
    condition = atom(cond_name, *cond_vars) if cond_name else AtomCondition(
        Atom.of("S", "x")
    )
    return BSGFQuery(output, (X, Y), Atom.of(guard_name, "x", "y"), condition)


def chain_query():
    return SGFQuery(
        (
            bsgf("Z1", "R", "S"),
            bsgf("Z2", "Z1", "T"),
            bsgf("Z3", "Z2", "U"),
            bsgf("Z4", "R", "T"),
            bsgf("Z5", "Z3", "Z4", cond_vars=("x", "x")),
        ),
        name="example5",
    )


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(SGFValidationError):
            SGFQuery(())

    def test_duplicate_output_rejected(self):
        with pytest.raises(SGFValidationError):
            SGFQuery((bsgf("Z", "R", "S"), bsgf("Z", "G", "T")))

    def test_forward_reference_rejected(self):
        with pytest.raises(SGFValidationError):
            SGFQuery((bsgf("Z1", "Z2", "S"), bsgf("Z2", "R", "T")))

    def test_self_reference_rejected(self):
        with pytest.raises(SGFValidationError):
            SGFQuery((bsgf("Z1", "Z1", "S"),))

    def test_backward_reference_ok(self):
        query = SGFQuery((bsgf("Z1", "R", "S"), bsgf("Z2", "Z1", "T")))
        assert len(query) == 2


class TestStructure:
    def test_output_is_last_subquery(self):
        assert chain_query().output == "Z5"

    def test_output_names(self):
        assert chain_query().output_names == ("Z1", "Z2", "Z3", "Z4", "Z5")

    def test_intermediate_and_root_names(self):
        query = chain_query()
        assert query.intermediate_names == frozenset({"Z1", "Z2", "Z3", "Z4"})
        assert query.root_names == ("Z5",)

    def test_base_relation_names(self):
        assert chain_query().base_relation_names == frozenset({"R", "S", "T", "U"})

    def test_subquery_lookup(self):
        query = chain_query()
        assert query.subquery("Z3").guard.relation == "Z2"
        with pytest.raises(KeyError):
            query.subquery("missing")

    def test_dependencies_match_example5(self):
        deps = chain_query().dependencies()
        assert deps["Z1"] == frozenset()
        assert deps["Z2"] == frozenset({"Z1"})
        assert deps["Z3"] == frozenset({"Z2"})
        assert deps["Z4"] == frozenset()
        assert deps["Z5"] == frozenset({"Z3", "Z4"})

    def test_is_basic(self):
        assert SGFQuery((bsgf("Z", "R", "S"),)).is_basic()
        assert not chain_query().is_basic()

    def test_levels_bottom_up(self):
        levels = chain_query().levels()
        names = [[q.output for q in level] for level in levels]
        assert names == [["Z1", "Z4"], ["Z2"], ["Z3"], ["Z5"]]

    def test_getitem_and_iter(self):
        query = chain_query()
        assert query[0].output == "Z1"
        assert [q.output for q in query] == list(query.output_names)

    def test_multiple_roots(self):
        query = SGFQuery((bsgf("Z1", "R", "S"), bsgf("Z2", "G", "T")))
        assert query.root_names == ("Z1", "Z2")


class TestConstruction:
    def test_from_queries(self):
        query = SGFQuery.from_queries([bsgf("Z1", "R", "S")], name="q")
        assert query.name == "q"

    def test_union_combines(self):
        left = SGFQuery((bsgf("Z1", "R", "S"),), name="a")
        right = SGFQuery((bsgf("Z2", "G", "T"),), name="b")
        combined = SGFQuery.union([left, right])
        assert combined.output_names == ("Z1", "Z2")

    def test_union_duplicate_outputs_rejected(self):
        left = SGFQuery((bsgf("Z1", "R", "S"),))
        right = SGFQuery((bsgf("Z1", "G", "T"),))
        with pytest.raises(SGFValidationError):
            SGFQuery.union([left, right])

    def test_str_contains_all_subqueries(self):
        text = str(chain_query())
        assert text.count(":=") == 5
