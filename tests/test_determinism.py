"""Cross-hash-seed determinism of the whole engine (tools/determinism_check).

The engine's contract is that outputs *and* every simulated metric are pure
functions of (query, database, strategy, options) — nothing may leak Python's
per-process hash randomisation.  ``tools/determinism_check.py`` canonically
digests the sorted outputs and the shuffle orderings of a fixed workload mix;
here it is spawned under different ``PYTHONHASHSEED`` values and the stdout
must match byte for byte (the same check CI runs as a dedicated step).
"""

from __future__ import annotations

import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))
SCRIPT = os.path.join(REPO_ROOT, "tools", "determinism_check.py")


def _run(seed: str) -> str:
    env = dict(
        os.environ,
        PYTHONHASHSEED=seed,
        PYTHONPATH=os.path.join(REPO_ROOT, "src"),
    )
    result = subprocess.run(
        [sys.executable, SCRIPT, "--tuples", "120"],
        env=env,
        capture_output=True,
        text=True,
        check=True,
        cwd=REPO_ROOT,
    )
    return result.stdout


def test_digests_identical_across_hash_seeds():
    first = _run("0")
    second = _run("1")
    assert first, "determinism check produced no output"
    assert first == second, (
        "engine output varied with PYTHONHASHSEED:\n"
        f"--- seed 0 ---\n{first}\n--- seed 1 ---\n{second}"
    )
    # Kernel-on and kernel-off lines of one combination share their digests
    # (parity), and every strategy appears for both cases.
    lines = first.strip().splitlines()
    assert len(lines) % 2 == 0
    for off_line, on_line in zip(lines[0::2], lines[1::2]):
        assert "kernel=off" in off_line and "kernel=on" in on_line
        assert off_line.split("kernel=")[1].split(" ", 1)[1] == (
            on_line.split("kernel=")[1].split(" ", 1)[1]
        )
