"""Smoke tests: every example script runs end to end and prints what it promises."""

import os
import subprocess
import sys

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)
SRC_DIR = os.path.join(os.path.dirname(EXAMPLES_DIR), "src")


def run_example(name, *args, timeout=300):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        check=False,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "Answer (upcoming books of never-flagged authors):" in proc.stdout
        assert "('Dune II', 'Herbert')" in proc.stdout
        assert "('Titanium Noir', 'Harkaway')" in proc.stdout
        assert "('More Sandworms', 'Anderson')" not in proc.stdout
        assert "Reference evaluator agrees" in proc.stdout

    def test_plan_exploration(self):
        proc = run_example("plan_exploration.py")
        assert proc.returncode == 0, proc.stderr
        assert "Estimated cost of every partition" in proc.stdout
        assert "Greedy-BSGF chooses" in proc.stdout
        assert "BSGF-Opt (brute force)" in proc.stdout
        assert "MSJ(" in proc.stdout

    def test_strategy_comparison(self):
        proc = run_example("strategy_comparison.py", "1e-6")
        assert proc.returncode == 0, proc.stderr
        assert "Relative to SEQ" in proc.stdout
        for strategy in ("SEQ", "PAR", "GREEDY", "1-ROUND", "HPAR", "HPARS", "PPAR"):
            assert strategy in proc.stdout

    def test_nested_sgf_pipeline(self):
        proc = run_example("nested_sgf_pipeline.py")
        assert proc.returncode == 0, proc.stderr
        assert "Multiway topological sorts" in proc.stdout
        assert "Greedy-SGF" in proc.stdout
        assert "all strategies agree with the reference evaluator" in proc.stdout

    def test_skew_and_replanning(self):
        proc = run_example("skew_and_replanning.py")
        assert proc.returncode == 0, proc.stderr
        assert "Detected heavy join keys: [(7,)]" in proc.stdout
        assert "Answers are identical with and without salting." in proc.stdout
        assert "Dynamic and static evaluations agree" in proc.stdout
