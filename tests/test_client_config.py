"""The unified client API (``repro.connect``) and the shared
:class:`ExecutionConfig` bundle.

Covers the two API-surface satellites of the service-tier redesign:

* ``connect()`` accepts every database shape (built ``Database``, plain
  mapping, CSV directory path), every backend by name, and returns one
  ``Connection`` whose queries all come back as the single ``Result`` type
  — while the historical entry points (``Gumbo``, ``QueryService``) keep
  working underneath;
* ``ExecutionConfig`` is the one validated configuration consumed by the
  CLI, the query service and the fuzzer oracle: construction-time
  validation, argparse lifting, lowering to ``GumboOptions``, backend
  construction;
* batched submissions propagate per-query failures as results
  (``BatchResult.failures``) instead of aborting the batch, and the
  failures land in ``ServiceStats.queries_failed``.
"""

from __future__ import annotations

import argparse

import pytest

import repro
from repro import Connection, ExecutionConfig, Gumbo, Result, connect
from repro.core.options import GumboOptions
from repro.exec import ParallelBackend, SimulatedBackend
from repro.io import save_database
from repro.model.database import Database
from repro.service import BatchFailure, QueryService
from repro.service.sharded import ShardedBackend

QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
DB = {
    "R": [(1, 2), (3, 4), (5, 6), (7, 8)],
    "S": [(1,), (3,), (5,)],
    "T": [(4,)],
}
EXPECTED = {(1, 2), (5, 6)}


# -- ExecutionConfig -----------------------------------------------------------------


class TestExecutionConfig:
    def test_defaults_and_normalisation(self):
        config = ExecutionConfig()
        assert config.backend == "serial"
        assert ExecutionConfig(backend="mp").backend == "parallel"
        assert ExecutionConfig(backend="sqlite3").backend == "sql"
        assert ExecutionConfig(backend="shards").backend == "sharded"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "hadoop"},
            {"workers": 0},
            {"shards": 0},
            {"shards": -3},
            {"nodes": 0},
            {"kernel_mode": "maybe"},
        ],
    )
    def test_invalid_values_rejected_at_construction(self, kwargs):
        with pytest.raises(ValueError):
            ExecutionConfig(**kwargs)

    def test_from_cli_args_lifts_any_namespace(self):
        """Attributes a subcommand doesn't define fall back to defaults."""
        full = argparse.Namespace(
            backend="sharded",
            workers=None,
            shards=4,
            sql_db=None,
            kernel_mode="on",
            strategy="greedy",
            nodes=5,
            no_packing=True,
            no_tuple_reference=False,
            trace=False,
            trace_out="spans.jsonl",
        )
        config = ExecutionConfig.from_cli_args(full)
        assert config.backend == "sharded"
        assert config.shards == 4
        assert config.kernel_mode == "on"
        assert config.strategy == "greedy"
        assert config.nodes == 5
        assert config.message_packing is False
        assert config.tuple_reference is True
        assert config.trace is True  # --trace-out implies tracing

        sparse = ExecutionConfig.from_cli_args(argparse.Namespace())
        assert sparse == ExecutionConfig()

    def test_to_options_round_trip(self):
        config = ExecutionConfig(
            backend="parallel", workers=3, strategy="seq", kernel_mode="off"
        )
        options = config.to_options()
        assert isinstance(options, GumboOptions)
        assert options.backend == "parallel"
        assert options.workers == 3
        assert options.default_strategy == "seq"
        assert options.kernel_mode == "off"

    def test_make_backend_builds_the_configured_backend(self):
        assert isinstance(ExecutionConfig().make_backend(), SimulatedBackend)
        with ExecutionConfig(backend="parallel", workers=1).make_backend() as b:
            assert isinstance(b, ParallelBackend)
            assert b.workers == 1
        with ExecutionConfig(backend="sharded", shards=2).make_backend() as b:
            assert isinstance(b, ShardedBackend)
            assert b.shards == 2

    def test_with_backend_keeps_the_other_knobs(self):
        config = ExecutionConfig(workers=3, shards=5, kernel_mode="off")
        swapped = config.with_backend("sharded")
        assert swapped.backend == "sharded"
        assert swapped.shards == 5
        assert swapped.workers == 3
        assert swapped.kernel_mode == "off"
        assert config.backend == "serial"  # original untouched (frozen)

    def test_query_service_accepts_config_exclusively(self):
        database = Database.from_dict(DB)
        with QueryService(database, config=ExecutionConfig(strategy="seq")) as svc:
            assert svc.execute(QUERY).outputs["Z"].tuples() == EXPECTED
        with pytest.raises(ValueError):
            QueryService(database, config=ExecutionConfig(), backend="serial")
        with pytest.raises(ValueError):
            QueryService(database, config=ExecutionConfig(), workers=2)
        with pytest.raises(ValueError):
            QueryService(
                database, config=ExecutionConfig(), options=GumboOptions()
            )


# -- connect() / Connection / Result -------------------------------------------------


class TestConnect:
    def test_connect_from_mapping(self):
        with connect(DB) as conn:
            assert isinstance(conn, Connection)
            result = conn.execute(QUERY)
            assert isinstance(result, Result)
            assert result.tuples() == EXPECTED
            assert result.backend == "serial"

    def test_connect_from_database_and_path(self, tmp_path):
        database = Database.from_dict(DB)
        with connect(database) as conn:
            assert conn.database is database
            assert conn.execute(QUERY).tuples() == EXPECTED
        save_database(database, tmp_path)
        with connect(str(tmp_path)) as conn:
            assert conn.execute(QUERY).tuples() == EXPECTED

    @pytest.mark.parametrize("backend", ["serial", "parallel", "sql", "sharded"])
    def test_every_backend_by_name(self, backend):
        kwargs = {"workers": 1} if backend == "parallel" else {}
        if backend == "sharded":
            kwargs = {"shards": 2}
        with connect(DB, backend=backend, **kwargs) as conn:
            result = conn.execute(QUERY)
            assert result.tuples() == EXPECTED
            assert conn.backend == backend
            assert result.backend == backend

    def test_result_surface(self):
        with connect(DB) as conn:
            result = conn.execute(QUERY)
            assert set(result.outputs) == {"Z"}
            assert result.output().tuples() == EXPECTED
            assert result.output("Z").name == "Z"
            assert result.strategy in {"seq", "par", "greedy", "1-round"}
            assert result.fingerprint
            assert result.plan_cached is False
            assert result.exec_s >= 0.0
            assert result.metrics.backend == "serial"
            assert "Z=2" in repr(result)
            # Second serve of the same query hits the plan cache.
            assert conn.execute(QUERY).plan_cached is True

    def test_output_requires_name_when_ambiguous(self):
        program = (
            "Z1 := SELECT (x) FROM R(x, y) WHERE S(x);\n"
            "Z2 := SELECT (y) FROM R(x, y) WHERE T(y);"
        )
        with connect(DB) as conn:
            result = conn.execute(program)
            assert set(result.outputs) == {"Z1", "Z2"}
            with pytest.raises(ValueError):
                result.output()
            assert result.tuples("Z2") == {(4,)}

    def test_materialize_and_refresh(self):
        with connect(DB) as conn:
            conn.materialize(QUERY)
            assert conn.refresh("R", [(9, 10)]) == 1
            served = conn.execute(QUERY)
            assert served.plan_cached  # served from the materialization
            assert served.tuples() == EXPECTED  # 9 ∉ S: result unchanged
            assert conn.refresh("S", [(9,)]) == 1
            assert conn.execute(QUERY).tuples() == EXPECTED | {(9, 10)}

    def test_knob_exclusivity_rules(self):
        config = ExecutionConfig(backend="parallel", workers=1)
        options = GumboOptions(backend="parallel", workers=1)
        with pytest.raises(ValueError):
            connect(DB, config=config, backend="serial")
        with pytest.raises(ValueError):
            connect(DB, config=config, options=options)
        with pytest.raises(ValueError):
            connect(DB, options=options, workers=2)
        # config= and options= alone are honoured.
        with connect(DB, config=config) as conn:
            assert conn.backend == "parallel"
        with connect(DB, options=options) as conn:
            assert conn.backend == "parallel"

    def test_close_is_idempotent_and_context_managed(self):
        conn = connect(DB)
        assert not conn.closed
        conn.close()
        conn.close()
        assert conn.closed

    def test_facade_is_exported_at_top_level(self):
        assert repro.connect is connect
        for name in ("Connection", "Result", "ExecutionConfig", "connect"):
            assert name in repro.__all__

    def test_old_entry_points_still_work(self):
        """The deprecation is soft: Gumbo and QueryService stay supported."""
        database = Database.from_dict(DB)
        assert Gumbo().execute(QUERY, database).output().tuples() == EXPECTED
        with QueryService(database) as service:
            assert service.execute(QUERY).outputs["Z"].tuples() == EXPECTED
        assert "repro.connect" in (Gumbo.__doc__ or "")
        assert "repro.connect" in (QueryService.__doc__ or "")


# -- batch failure propagation -------------------------------------------------------


class TestBatchFailures:
    def test_one_failure_does_not_abort_the_batch(self):
        """The regression the redesign fixes: a bad query used to poison the
        whole batch; now it is reported alongside the other results."""
        queries = [
            QUERY,
            "THIS IS NOT SGF ::=",
            "Z2 := SELECT (x) FROM R(x, y) WHERE S(x);",
        ]
        with connect(DB) as conn:
            batch = conn.service.execute_many(queries)
            assert len(batch.results) == 2
            assert len(batch.failures) == 1
            assert not batch.ok
            failure = batch.failures[0]
            assert isinstance(failure, BatchFailure)
            assert failure.index == 1
            assert failure.error and isinstance(failure.exception, Exception)
            assert batch.results[0].outputs["Z"].tuples() == EXPECTED
            assert batch.results[1].outputs["Z2"].tuples() == {(1,), (3,), (5,)}
            assert batch.summary()["failures"] == 1
            assert conn.stats().queries_failed == 1

    def test_clean_batch_is_ok(self):
        with connect(DB) as conn:
            batch = conn.service.execute_many([QUERY, QUERY])
            assert batch.ok
            assert batch.failures == ()
            assert conn.stats().queries_failed == 0

    def test_connection_facade_raises_the_first_failure(self):
        with connect(DB) as conn:
            results = conn.execute_many([QUERY, QUERY])
            assert all(r.tuples() == EXPECTED for r in results)
            with pytest.raises(Exception) as excinfo:
                conn.execute_many([QUERY, "NOT SGF ::="])
            assert conn.stats().queries_failed == 1
            assert not isinstance(excinfo.value, AssertionError)
