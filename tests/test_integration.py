"""Integration tests: every evaluation strategy agrees with the reference semantics
on the paper's experiment workloads (small instances)."""

import pytest

from repro.core.gumbo import Gumbo
from repro.query.parser import parse_sgf
from repro.query.reference import evaluate_bsgf, evaluate_sgf
from repro.workloads.queries import bsgf_query_set, database_for, sgf_query
from repro.workloads.scaling import ScaledEnvironment

from helpers import as_set

ENV = ScaledEnvironment(scale=1e-6)  # 100-tuple guard relations


def gumbo():
    return Gumbo(engine=ENV.engine(), sample_size=100)


class TestBSGFWorkloads:
    @pytest.mark.parametrize("query_id", ["A2", "A4", "A5", "B1"])
    @pytest.mark.parametrize("strategy", ["seq", "par", "greedy"])
    def test_strategies_agree_with_reference(self, query_id, strategy):
        queries = bsgf_query_set(query_id)
        db = database_for(queries, guard_tuples=100, selectivity=0.5, seed=21)
        result = gumbo().execute(queries, db, strategy)
        for query in queries:
            assert as_set(result.all_outputs[query.output]) == as_set(
                evaluate_bsgf(query, db)
            ), (query_id, strategy, query.output)

    @pytest.mark.parametrize("query_id", ["A3", "B2"])
    def test_one_round_agrees_with_greedy(self, query_id):
        queries = bsgf_query_set(query_id)
        db = database_for(queries, guard_tuples=100, selectivity=0.5, seed=22)
        g = gumbo()
        greedy = g.execute(queries, db, "greedy")
        one_round = g.execute(queries, db, "1-round")
        for query in queries:
            assert as_set(greedy.all_outputs[query.output]) == as_set(
                one_round.all_outputs[query.output]
            )

    def test_selectivity_extremes_still_correct(self):
        queries = bsgf_query_set("A1")
        for selectivity in (0.0, 1.0):
            db = database_for(
                queries, guard_tuples=80, selectivity=selectivity, seed=23
            )
            result = gumbo().execute(queries, db, "greedy")
            reference = evaluate_bsgf(queries[0], db)
            assert as_set(result.output()) == as_set(reference)

    def test_metrics_consistency(self):
        """Across strategies, total time is at least net time and inputs are positive."""
        queries = bsgf_query_set("A1")
        db = database_for(queries, guard_tuples=100, selectivity=0.5, seed=24)
        g = gumbo()
        for strategy in ("seq", "par", "greedy"):
            metrics = g.execute(queries, db, strategy).metrics
            assert metrics.total_time >= metrics.net_time > 0
            assert metrics.input_mb > 0
            assert metrics.communication_mb > 0


class TestSGFWorkloads:
    @pytest.mark.parametrize("query_id", ["C2", "C3"])
    @pytest.mark.parametrize("strategy", ["sequnit", "parunit", "greedy-sgf"])
    def test_sgf_strategies_agree_with_reference(self, query_id, strategy):
        query = sgf_query(query_id)
        db = database_for(query, guard_tuples=80, selectivity=0.5, seed=25)
        result = gumbo().execute(query, db, strategy)
        reference = evaluate_sgf(query, db)
        for name in query.output_names:
            assert as_set(result.all_outputs[name]) == as_set(reference[name]), (
                query_id,
                strategy,
                name,
            )


class TestPaperIntroductionExample:
    """The running example of Section 1."""

    QUERY = """
    Q := SELECT (x, y) FROM R(x, y)
         WHERE (S(x, y) OR S(y, x)) AND T(x, z);
    """

    def test_all_strategies_agree(self):
        from repro.model.database import Database

        db = Database.from_dict(
            {
                "R": [(1, 2), (2, 1), (3, 4), (5, 6)],
                "S": [(1, 2), (4, 3)],
                "T": [(1, 7), (3, 8), (5, 9)],
            }
        )
        query = parse_sgf(self.QUERY)
        reference = evaluate_sgf(query, db)["Q"]
        g = Gumbo()
        answers = set()
        for strategy in ("seq", "par", "greedy"):
            result = g.execute(query, db, strategy)
            answers.add(as_set(result.output()))
        assert answers == {as_set(reference)}
        # (1, 2): S(1,2) holds and T(1, _) exists -> in the answer.
        # (3, 4): S(4,3) holds and T(3, _) exists -> in the answer.
        # (2, 1): S(2,1) no, S(1,2) yes (reversed) and T(2, _) missing -> out.
        # (5, 6): no S fact -> out.
        assert as_set(reference) == {(1, 2), (3, 4)}
