"""Tests for the AUTO strategy: cost dominance, program costing, exposure."""

import pytest

from repro.core.costing import PlanCostEstimator
from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.core.strategies import (
    AUTO,
    applicable_strategies,
    build_bsgf_program,
    build_sgf_program,
    choose_strategy,
)
from repro.cost.estimates import StatisticsCatalog
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.program import MRProgram
from repro.query.parser import parse_sgf
from repro.query.reference import evaluate_sgf
from repro.workloads.queries import database_for, section5_workloads, workload_query

from helpers import small_database, star_database

#: Small but non-trivial workload size: enough tuples that the cost model
#: sees real size differences between the candidate plans.
GUARD_TUPLES = 400


def estimator_for(db, options=None):
    return PlanCostEstimator(
        StatisticsCatalog(db, sample_size=200), options=options or GumboOptions()
    )


def section5_cases():
    for query_id, query in section5_workloads():
        yield pytest.param(query_id, query, id=query_id)


class TestProgramCosting:
    """program_estimate / program_cost over every strategy's program shape."""

    @pytest.mark.parametrize("query_id,query", list(section5_cases()))
    def test_every_applicable_program_costs_positive(self, query_id, query):
        db = database_for(query, guard_tuples=60, seed=1)
        for strategy in applicable_strategies(query):
            estimator = estimator_for(db)
            if query.intermediate_names:
                program = build_sgf_program(query, strategy, estimator)
            else:
                program = build_bsgf_program(
                    list(query.subqueries), strategy, estimator
                )
            estimate = estimator.program_estimate(program)
            assert estimate.cost > 0.0
            assert len(estimate.jobs) == len(program)
            assert estimate.cost == pytest.approx(sum(estimate.breakdown().values()))

    def test_breakdown_keys_are_job_ids(self):
        db = star_database()
        query = parse_sgf(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE S(x) AND T(y);"
        )
        estimator = estimator_for(db)
        program = build_bsgf_program(list(query.subqueries), "greedy", estimator)
        estimate = estimator.program_estimate(program)
        assert set(estimate.breakdown()) == set(program.job_ids)

    def test_unknown_job_type_raises(self):
        class MysteryJob(MapReduceJob):
            def input_relations(self):
                return []

            def output_schema(self):
                return {}

            def map(self, relation, row):
                return []

            def reduce(self, key, values):
                return []

        program = MRProgram("mystery")
        program.add_job(MysteryJob("m0"))
        with pytest.raises(TypeError):
            estimator_for(small_database()).program_cost(program)


class TestAutoDominance:
    """AUTO's winner is estimated-cost-minimal over every applicable strategy."""

    @pytest.mark.parametrize("query_id,query", list(section5_cases()))
    def test_auto_cost_le_every_candidate(self, query_id, query):
        db = database_for(query, guard_tuples=GUARD_TUPLES, seed=7)
        choice = choose_strategy(query, estimator_for(db))
        assert choice.strategy in applicable_strategies(query)
        assert not choice.errors
        # The winner's cost is the minimum over the full candidate matrix.
        for name, cost in choice.costs.items():
            assert choice.cost <= cost + 1e-9, (
                f"{query_id}: AUTO chose {choice.strategy} at {choice.cost}, "
                f"but {name} is cheaper at {cost}"
            )
        assert choice.cost == pytest.approx(min(choice.costs.values()))

    @pytest.mark.parametrize("query_id,query", list(section5_cases()))
    def test_auto_cost_le_forced_strategy_fresh_estimators(self, query_id, query):
        """Cross-check with independently built estimators per candidate."""
        db = database_for(query, guard_tuples=GUARD_TUPLES, seed=7)
        choice = choose_strategy(query, estimator_for(db))
        for strategy in applicable_strategies(query):
            estimator = estimator_for(db)
            if query.intermediate_names:
                program = build_sgf_program(query, strategy, estimator)
            else:
                program = build_bsgf_program(
                    list(query.subqueries), strategy, estimator
                )
            assert choice.cost <= estimator.program_cost(program) + 1e-9

    def test_describe_mentions_winner_and_costs(self):
        query = workload_query("A3")
        db = database_for(query, guard_tuples=100, seed=0)
        choice = choose_strategy(query, estimator_for(db))
        text = choice.describe()
        assert choice.strategy in text
        for name in choice.costs:
            assert name in text


class TestAutoThroughGumbo:
    def test_execute_auto_matches_reference(self):
        db = star_database()
        query = parse_sgf(
            "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) "
            "WHERE S(x) AND T(y) AND U(z) AND V(w);"
        )
        result = Gumbo().execute(query, db, AUTO)
        expected = evaluate_sgf(query, db)
        assert result.output().tuples() == expected["Z"].tuples()
        # The result reports the concrete winner plus the full breakdown.
        assert result.strategy in applicable_strategies(query)
        assert result.choice is not None
        assert result.choice.strategy == result.strategy

    def test_execute_auto_nested_matches_reference(self):
        db = small_database()
        query = parse_sgf(
            "M := SELECT (x) FROM R(x, y) WHERE S(x);"
            "Z := SELECT (x, y) FROM R(x, y) WHERE M(x) AND NOT T(y);"
        )
        result = Gumbo().execute(query, db, AUTO)
        expected = evaluate_sgf(query, db)
        assert result.output().tuples() == expected["Z"].tuples()
        assert result.strategy in applicable_strategies(query)

    def test_default_strategy_option_routes_to_auto(self):
        db = small_database()
        gumbo = Gumbo(options=GumboOptions(default_strategy="auto"))
        result = gumbo.execute("Z := SELECT (x) FROM R(x, y) WHERE S(x);", db)
        assert result.choice is not None
        assert result.strategy == result.choice.strategy

    @pytest.mark.parametrize("alias", ["AUTO", "cost", "best", " Auto "])
    def test_auto_aliases(self, alias):
        db = small_database()
        result = Gumbo().execute("Z := SELECT (x) FROM R(x, y) WHERE S(x);", db, alias)
        assert result.choice is not None

    def test_plan_auto_returns_winning_program(self):
        db = star_database()
        query = "Z := SELECT (x, y, z, w) FROM R(x, y, z, w) WHERE S(x) AND T(x);"
        gumbo = Gumbo()
        program = gumbo.plan(query, db, AUTO)
        choice = gumbo.choose(query, db)
        assert program.rounds() == choice.program.rounds()
        assert len(program) == len(choice.program)
