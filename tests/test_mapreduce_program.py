"""Unit tests for MR program DAGs."""

import pytest

from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.program import MRProgram, ProgramValidationError


class DummyJob(MapReduceJob):
    """A minimal identity job used to test program structure."""

    def __init__(self, job_id, inputs=("R",), output="Out"):
        super().__init__(job_id)
        self._inputs = list(inputs)
        self._output = output

    def input_relations(self):
        return self._inputs

    def map(self, relation, row):
        return [(row, row)]

    def reduce(self, key, values):
        return [(self._output, key)]

    def output_schema(self):
        return {self._output: len(self._inputs[0]) if False else 2}


class TestProgramConstruction:
    def test_add_job(self):
        program = MRProgram()
        program.add_job(DummyJob("a"))
        assert "a" in program
        assert len(program) == 1

    def test_duplicate_job_id_rejected(self):
        program = MRProgram()
        program.add_job(DummyJob("a"))
        with pytest.raises(ProgramValidationError):
            program.add_job(DummyJob("a"))

    def test_unknown_dependency_rejected(self):
        program = MRProgram()
        with pytest.raises(ProgramValidationError):
            program.add_job(DummyJob("a"), depends_on=["missing"])

    def test_add_jobs_shares_dependencies(self):
        program = MRProgram()
        program.add_job(DummyJob("root"))
        program.add_jobs([DummyJob("a"), DummyJob("b")], depends_on=["root"])
        assert program.dependencies_of("a") == frozenset({"root"})
        assert program.dependencies_of("b") == frozenset({"root"})

    def test_job_lookup(self):
        program = MRProgram()
        job = program.add_job(DummyJob("a"))
        assert program.job("a") is job


class TestLevelsAndRounds:
    def test_single_level(self):
        program = MRProgram()
        program.add_jobs([DummyJob("a"), DummyJob("b")])
        assert program.rounds() == 1
        assert [j.job_id for j in program.levels()[0]] == ["a", "b"]

    def test_two_levels(self):
        program = MRProgram()
        program.add_jobs([DummyJob("m1"), DummyJob("m2")])
        program.add_job(DummyJob("eval"), depends_on=["m1", "m2"])
        assert program.rounds() == 2
        assert [j.job_id for j in program.levels()[1]] == ["eval"]

    def test_chain_levels(self):
        program = MRProgram()
        program.add_job(DummyJob("a"))
        program.add_job(DummyJob("b"), depends_on=["a"])
        program.add_job(DummyJob("c"), depends_on=["b"])
        assert program.rounds() == 3

    def test_diamond(self):
        program = MRProgram()
        program.add_job(DummyJob("a"))
        program.add_jobs([DummyJob("b"), DummyJob("c")], depends_on=["a"])
        program.add_job(DummyJob("d"), depends_on=["b", "c"])
        assert program.rounds() == 3
        assert [j.job_id for j in program.levels()[1]] == ["b", "c"]

    def test_validate_passes(self):
        program = MRProgram()
        program.add_job(DummyJob("a"))
        program.validate()


class TestComposition:
    def test_then_sequential_composition(self):
        first = MRProgram("first")
        first.add_jobs([DummyJob("a"), DummyJob("b")])
        second = MRProgram("second")
        second.add_job(DummyJob("c"))
        combined = first.then(second)
        assert combined.rounds() == 2
        assert combined.dependencies_of("c") == frozenset({"a", "b"})

    def test_then_preserves_internal_dependencies(self):
        first = MRProgram("first")
        first.add_job(DummyJob("a"))
        second = MRProgram("second")
        second.add_job(DummyJob("b"))
        second.add_job(DummyJob("c"), depends_on=["b"])
        combined = first.then(second)
        assert combined.dependencies_of("c") == frozenset({"a", "b"})
        assert combined.rounds() == 3

    def test_repr(self):
        program = MRProgram("p")
        program.add_job(DummyJob("a"))
        assert "jobs=1" in repr(program)
