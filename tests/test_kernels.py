"""Kernel-vs-interpreted parity: the batch execution path must be invisible.

The batch ("kernel") path of :mod:`repro.mapreduce.kernels` replaces the
tuple-at-a-time map/combine/shuffle/reduce interpretation of every semi-join
shaped job with compiled matchers and set operations, while computing the
simulated Hadoop metrics analytically from pair counts.  These tests pin the
contract down:

* on every Section 5 workload, under every applicable strategy and on both
  execution backends, ``kernel_mode="on"`` and ``kernel_mode="off"`` produce
  bit-identical output relations **and** bit-identical :class:`JobMetrics`
  (partition metrics, reducer counts, cost breakdowns, per-task durations —
  i.e. including the skew-sensitive per-reducer loads);
* the same parity holds for random (B)SGF programs (a hypothesis property
  over the fuzzer's generator), including with the paper optimisations
  ablated;
* dispatch honours ``kernel_mode`` and ``supports_kernel`` (baseline and
  skew-salted jobs always interpret; ``"auto"`` keeps the parallel backend's
  fan-out);
* the differential oracle's kernel axes detect an (injected) kernel bug.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.gumbo import Gumbo
from repro.core.msj import MSJJob
from repro.core.options import GumboOptions
from repro.core.skew import SkewAwareMSJJob
from repro.core.strategies import applicable_strategies
from repro.exec import ParallelBackend, SimulatedBackend
from repro.fuzz.generator import FuzzConfig, generate_case
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.runner import FuzzOptions, run_fuzz
from repro.mapreduce.engine import MapReduceEngine
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.kernels import use_kernel
from repro.model.atoms import Atom, compile_atom
from repro.model.database import Database
from repro.model.relation import Relation
from repro.query.parser import parse_bsgf, parse_sgf
from repro.workloads.queries import database_for, section5_workloads

WORKLOAD_TUPLES = 150


def assert_job_metrics_equal(interpreted, kernel, context=""):
    """Every simulated measurement must match, field for field."""
    assert set(interpreted.job_metrics) == set(kernel.job_metrics), context
    for job_id, expected in interpreted.job_metrics.items():
        got = kernel.job_metrics[job_id]
        label = f"{context}:{job_id}"
        assert expected.partitions == got.partitions, label
        assert expected.reducers == got.reducers, label
        assert expected.output_mb == got.output_mb, label
        assert expected.output_records == got.output_records, label
        assert expected.breakdown == got.breakdown, label
        assert expected.map_task_durations == got.map_task_durations, label
        assert expected.reduce_task_durations == got.reduce_task_durations, label
    assert interpreted.summary() == kernel.summary(), context
    assert interpreted.level_net_times == kernel.level_net_times, context


def assert_parity(query, database, strategy, backend_factory, options=None):
    """Outputs and metrics of kernel-on vs kernel-off runs must be identical."""
    options = options or GumboOptions()
    results = {}
    for mode in ("off", "on"):
        backend = backend_factory()
        try:
            gumbo = Gumbo(backend=backend, options=options.without(kernel_mode=mode))
            results[mode] = gumbo.execute(query, database, strategy)
        finally:
            backend.close()
    interpreted, kernel = results["off"], results["on"]
    context = f"{strategy}"
    assert set(interpreted.all_outputs) == set(kernel.all_outputs), context
    for name in interpreted.all_outputs:
        assert (
            interpreted.all_outputs[name].tuples() == kernel.all_outputs[name].tuples()
        ), f"{context}:{name}"
    assert_job_metrics_equal(interpreted.metrics, kernel.metrics, context)


# -- Section 5 workloads: the full strategy matrix ---------------------------------


@pytest.mark.parametrize(
    "query_id,query",
    section5_workloads(),
    ids=[query_id for query_id, _ in section5_workloads()],
)
def test_kernel_parity_section5_serial(query_id, query):
    database = database_for(
        query, guard_tuples=WORKLOAD_TUPLES, selectivity=0.5, seed=13
    )
    for strategy in applicable_strategies(query, include_optimal=False):
        assert_parity(query, database, strategy, lambda: SimulatedBackend())


@pytest.mark.parametrize("query_id", ["A1", "A3", "B2", "C2"])
def test_kernel_parity_parallel_backend(query_id):
    query = dict(section5_workloads())[query_id]
    database = database_for(query, guard_tuples=80, selectivity=0.5, seed=5)
    strategy = next(iter(applicable_strategies(query, include_optimal=False)))
    assert_parity(
        query,
        database,
        strategy,
        lambda: ParallelBackend(MapReduceEngine(), workers=2),
    )


def test_kernel_parity_with_optimisations_ablated():
    query = dict(section5_workloads())["A3"]
    database = database_for(query, guard_tuples=100, selectivity=0.5, seed=9)
    for packing in (True, False):
        for reference in (True, False):
            options = GumboOptions(
                message_packing=packing, tuple_reference=reference
            )
            for strategy in applicable_strategies(query, include_optimal=False):
                assert_parity(
                    query, database, strategy, lambda: SimulatedBackend(), options
                )


# -- columnar storage: mixed-type columns, NaN values, empty relations --------------

MIXED_TYPE_DB = {
    "R": [
        (1, "a"),
        (2.5, None),
        ("s3", 3),
        (None, "b"),
        (7, 7.5),
        ("s3", None),
    ],
    "S": [(1,), ("s3",), (None,), (9,)],
    "T": [("a",), (3,), (None,)],
}

MIXED_TYPE_QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"


def test_kernel_parity_mixed_type_columns_serial():
    """Mixed int/float/str/None columns defeat typed packing but not parity."""
    query = parse_sgf(MIXED_TYPE_QUERY)
    database = Database.from_dict(MIXED_TYPE_DB)
    for strategy in applicable_strategies(query, include_optimal=False):
        assert_parity(query, database, strategy, lambda: SimulatedBackend())


def test_kernel_parity_mixed_type_columns_parallel():
    """Object-column fallback of ColumnBlock.packed still ships correctly."""
    query = parse_sgf(MIXED_TYPE_QUERY)
    database = Database.from_dict(MIXED_TYPE_DB)
    strategy = next(iter(applicable_strategies(query, include_optimal=False)))
    assert_parity(
        query,
        database,
        strategy,
        lambda: ParallelBackend(MapReduceEngine(), workers=2),
    )


def test_kernel_parity_nan_values_serial():
    """NaN-bearing relations agree bit for bit between the two paths.

    In-process only: the parallel backend pickles rows per map task, which
    clones a NaN into distinct objects that no longer compare equal anywhere
    (IEEE NaN inequality, a property of the data model rather than of either
    execution path), so NaN coverage lives on the serial backend.
    """
    nan = float("nan")
    other_nan = struct.unpack(">d", bytes.fromhex("7ff8000000000001"))[0]
    database = Database.from_dict(
        {
            "R": [(nan, 1), (other_nan, 2), (1.0, nan), (2.0, 3.0), (2.0, nan)],
            "S": [(nan,), (2.0,)],
        }
    )
    query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
    for strategy in applicable_strategies(query, include_optimal=False):
        assert_parity(query, database, strategy, lambda: SimulatedBackend())


def test_kernel_parity_empty_relations():
    """Empty guard, empty conditional, and fully empty databases."""
    query = parse_sgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
    arities = {"R": 2, "S": 1}
    shapes = [
        {"R": [], "S": [(1,)]},
        {"R": [(1, 2), (3, 4)], "S": []},
        {"R": [], "S": []},
    ]
    for shape in shapes:
        database = Database(
            Relation.from_tuples(name, rows, arity=arities[name])
            for name, rows in shape.items()
        )
        strategies = applicable_strategies(query, include_optimal=False)
        for strategy in strategies:
            assert_parity(query, database, strategy, lambda: SimulatedBackend())
        assert_parity(
            query,
            database,
            next(iter(strategies)),
            lambda: ParallelBackend(MapReduceEngine(), workers=2),
        )


def test_fuzzer_kernel_axes_cover_adversarial_profile():
    """A seeded campaign over mixed-type databases keeps every kernel axis green."""
    report = run_fuzz(
        FuzzOptions(
            seed=17,
            iterations=8,
            workers=2,
            stop_on_failure=False,
            config=FuzzConfig(profile="adversarial"),
        )
    )
    details = "\n\n".join(c.describe() for c in report.counterexamples)
    assert report.ok, f"kernel axes diverged on adversarial data:\n{details}"
    assert report.cases_run == 8


# -- hypothesis: random (B)SGF programs --------------------------------------------


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case_index=st.integers(min_value=0, max_value=400))
def test_kernel_parity_random_programs(case_index):
    case = generate_case(77, case_index, FuzzConfig(max_statements=3, max_tuples=10))
    for strategy in applicable_strategies(case.program, include_optimal=True):
        assert_parity(
            case.program, case.database, strategy, lambda: SimulatedBackend()
        )


# -- dispatch rules ----------------------------------------------------------------


class _PlainJob(MapReduceJob):
    """A job without a kernel: must interpret whatever the mode says."""

    def __init__(self):
        super().__init__("plain")
        self.options = GumboOptions(kernel_mode="on")

    def input_relations(self):
        return ["R"]

    def map(self, relation, row):
        return [((row[0],), tuple(row))]

    def reduce(self, key, values):
        for value in values:
            yield ("OUT", value)

    def output_schema(self):
        return {"OUT": 2}


def test_jobs_without_kernel_always_interpret():
    job = _PlainJob()
    assert not job.supports_kernel()
    assert not use_kernel(job)
    database = Database.from_dict({"R": [(1, 2), (3, 4)]})
    result = MapReduceEngine().run_job(job, database)
    assert result.outputs["OUT"].tuples() == {(1, 2), (3, 4)}


def test_kernel_mode_off_never_calls_map_batch(monkeypatch):
    query = parse_bsgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
    specs = query.semijoin_specs()
    database = Database.from_dict({"R": [(1, 2)], "S": [(1,)]})
    job = MSJJob("msj", specs, GumboOptions(kernel_mode="off"))

    def boom(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("map_batch called despite kernel_mode=off")

    monkeypatch.setattr(MSJJob, "map_batch", boom)
    result = MapReduceEngine().run_job(job, database)
    assert result.outputs[specs[0].output].tuples() == {(1,)}


def test_kernel_mode_auto_keeps_parallel_fanout_and_on_forces_kernel():
    job_auto = MSJJob(
        "msj",
        parse_bsgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);").semijoin_specs(),
        GumboOptions(kernel_mode="auto"),
    )
    assert use_kernel(job_auto)  # serial engine: kernel
    assert not use_kernel(job_auto, fanout=True)  # parallel backend: fan-out
    job_on = MSJJob(
        "msj",
        parse_bsgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);").semijoin_specs(),
        GumboOptions(kernel_mode="on"),
    )
    assert use_kernel(job_on, fanout=True)


def test_skew_salted_msj_falls_back_to_interpreted():
    specs = parse_bsgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);").semijoin_specs()
    job = SkewAwareMSJJob("skew", specs, heavy_keys=[(1,)], salt_factor=4)
    assert not job.supports_kernel()
    assert not use_kernel(job)


def test_invalid_kernel_mode_rejected():
    with pytest.raises(ValueError):
        GumboOptions(kernel_mode="sometimes")


def test_parallel_wall_metrics_present_for_forced_kernel():
    query = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
    database = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
    backend = ParallelBackend(MapReduceEngine(), workers=2)
    try:
        gumbo = Gumbo(backend=backend, options=GumboOptions(kernel_mode="on"))
        result = gumbo.execute(query, database, "par")
    finally:
        backend.close()
    assert result.output().tuples() == {(1,)}
    assert result.metrics.wall_elapsed_s > 0
    for metrics in result.metrics.job_metrics.values():
        assert metrics.wall is not None
        assert metrics.wall.backend == "parallel"


# -- the oracle's kernel axes detect kernel bugs -----------------------------------


def test_corrupted_reduce_batch_is_detected_on_the_kernel_axes(monkeypatch):
    """A kernel that swallows outputs diverges exactly on the +kernel axes."""
    real = MSJJob.reduce_batch

    def corrupted(self, batches):
        outputs = real(self, batches)
        return {name: set() for name in outputs}

    monkeypatch.setattr(MSJJob, "reduce_batch", corrupted)
    program = parse_sgf("Z := SELECT (x) FROM R(x, y) WHERE S(x);")
    database = Database.from_dict({"R": [(1, 2), (3, 4)], "S": [(1,)]})
    with DifferentialOracle(backends=("serial",), include_dynamic=False) as oracle:
        divergences = oracle.check(program, database)
    assert divergences, "corrupted kernel was not detected"
    assert all(d.backend.endswith("+kernel") for d in divergences), [
        str(d) for d in divergences
    ]


# -- compiled atoms ----------------------------------------------------------------


class TestCompiledAtoms:
    def test_unrestricted_atom_has_no_matcher(self):
        compiled = Atom.of("R", "x", "y").compile()
        assert compiled.matcher is None
        assert compiled.conforms((1, 2))
        assert not compiled.conforms((1, 2, 3))  # arity mismatch

    def test_constant_and_repeated_variable_checks(self):
        atom = Atom.of("R", "x", 7, "x")
        compiled = atom.compile()
        rows = [(1, 7, 1), (1, 7, 2), (1, 8, 1), (3, 7, 3)]
        for row in rows:
            assert compiled.conforms(row) == atom.conforms(row), row

    def test_extractor_matches_projection(self):
        from repro.model.terms import Variable

        atom = Atom.of("R", "x", "y", "x")
        compiled = atom.compile()
        x, y = Variable("x"), Variable("y")
        row = (1, 2, 1)
        assert compiled.extractor((y, x))(row) == atom.project(row, (y, x))
        assert compiled.extractor(())(row) == ()
        assert compiled.extractor((x,))(row) == (1,)

    def test_compile_is_cached_per_atom_value(self):
        first = compile_atom(Atom.of("R", "x", 1))
        second = compile_atom(Atom.of("R", "x", 1))
        assert first is second
