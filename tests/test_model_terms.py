"""Unit tests for repro.model.terms."""

import pytest

from repro.model.terms import (
    Constant,
    Variable,
    as_term,
    is_constant,
    is_variable,
    variables_in,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_str(self):
        assert str(Variable("abc")) == "abc"

    def test_repr_roundtrip(self):
        assert "Variable" in repr(Variable("x"))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_non_string_name_rejected(self):
        with pytest.raises(ValueError):
            Variable(3)  # type: ignore[arg-type]

    def test_ordering(self):
        assert Variable("a") < Variable("b")


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("a") != Constant(1)

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_str_uses_repr_of_value(self):
        assert str(Constant("bad")) == "'bad'"
        assert str(Constant(4)) == "4"

    def test_constant_never_equals_variable(self):
        assert Constant("x") != Variable("x")


class TestAsTerm:
    def test_lowercase_identifier_becomes_variable(self):
        assert as_term("x") == Variable("x")
        assert as_term("aut") == Variable("aut")

    def test_uppercase_string_becomes_constant(self):
        assert as_term("Bad") == Constant("Bad")

    def test_number_becomes_constant(self):
        assert as_term(4) == Constant(4)

    def test_non_identifier_string_becomes_constant(self):
        assert as_term("hello world") == Constant("hello world")

    def test_existing_terms_pass_through(self):
        v, c = Variable("x"), Constant(1)
        assert as_term(v) is v
        assert as_term(c) is c

    def test_predicates(self):
        assert is_variable(Variable("x"))
        assert not is_variable(Constant(1))
        assert is_constant(Constant(1))
        assert not is_constant(Variable("x"))


class TestVariablesIn:
    def test_preserves_first_occurrence_order(self):
        terms = [Variable("y"), Constant(1), Variable("x"), Variable("y")]
        assert variables_in(terms) == (Variable("y"), Variable("x"))

    def test_empty(self):
        assert variables_in([]) == ()

    def test_only_constants(self):
        assert variables_in([Constant(1), Constant(2)]) == ()
