#!/usr/bin/env python
"""Cross-hash-seed determinism check for the execution engine.

Runs a fixed workload mix — the Section 5 A3 query plus a handwritten
mixed-type database that stresses the type-tagged sort order (ints, floats,
strings, ``None`` sharing columns) — under both kernel modes and every
applicable strategy, then prints a canonical digest per combination.  A
final pass re-runs the mix on the sharded persistent tier (every map/reduce
task executed in long-lived worker processes with their own interpreters,
routed by ``stable_hash`` placement), whose digests must equal the serial
ones line for line:

* ``outputs`` — SHA-256 over the sorted output relations, with floats
  rendered as their IEEE-754 bit patterns so the digest is bit-exact;
* ``shuffle`` — SHA-256 over the per-job map/reduce task-duration vectors,
  which expose the simulated shuffle's key-to-reducer placement (the part
  of the metrics most sensitive to set/dict iteration order).

Every line must be identical under every ``PYTHONHASHSEED``: CI runs the
script twice with different seeds and diffs the stdout; any divergence
pinpoints the combination that went hash-order dependent.

Usage::

    PYTHONPATH=src python tools/determinism_check.py [--tuples N]
"""

from __future__ import annotations

import argparse
import hashlib
import struct

from repro.core.gumbo import Gumbo
from repro.core.options import GumboOptions
from repro.core.strategies import applicable_strategies
from repro.model.database import Database
from repro.query.parser import parse_sgf
from repro.workloads.queries import database_for, workload_query

#: Mixed-type case: typed packing falls back to object columns and the
#: type-tagged sort order decides every ordering.
MIXED_QUERY = "Z := SELECT (x, y) FROM R(x, y) WHERE S(x) AND NOT T(y);"
MIXED_DB = {
    "R": [
        (1, "a"),
        (2.5, None),
        ("s3", 3),
        (None, "b"),
        (7, 7.5),
        ("s3", None),
        (1, 1.5),
        (None, None),
    ],
    "S": [(1,), ("s3",), (None,), (9,), (2.5,)],
    "T": [("a",), (3,), (None,), (7.5,)],
}


def canonical(value: object) -> str:
    """A bit-exact, hash-order-independent rendering of one field."""
    if isinstance(value, float):
        return "f:" + struct.pack(">d", value).hex()
    return repr(value)


def digest(lines) -> str:
    hasher = hashlib.sha256()
    for line in lines:
        hasher.update(line.encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()[:16]


def _digest_result(label: str, strategy: str, mode: str, result) -> str:
    output_lines = []
    for name in sorted(result.all_outputs):
        relation = result.all_outputs[name]
        for row in relation.sorted_tuples():
            output_lines.append(name + "|" + ",".join(canonical(v) for v in row))

    shuffle_lines = []
    for job_id in sorted(result.metrics.job_metrics):
        metrics = result.metrics.job_metrics[job_id]
        shuffle_lines.append(
            "%s|map:%s|reduce:%s"
            % (
                job_id,
                ",".join(map(canonical, metrics.map_task_durations)),
                ",".join(map(canonical, metrics.reduce_task_durations)),
            )
        )

    return (
        f"{label} strategy={strategy} kernel={mode} "
        f"outputs={digest(output_lines)} shuffle={digest(shuffle_lines)}"
    )


def run_case(label: str, query, database, backend=None) -> None:
    for strategy in applicable_strategies(query, include_optimal=False):
        for mode in ("off", "on"):
            gumbo = Gumbo(
                backend=backend, options=GumboOptions(kernel_mode=mode)
            )
            result = gumbo.execute(query, database, strategy)
            print(_digest_result(label, strategy, mode, result))


def run_sharded_case(label: str, query, database, shards: int = 2) -> None:
    """The same digests, computed through the sharded worker tier.

    One cluster serves every strategy × kernel-mode combination, so the
    check also covers warm-shard reuse; worker processes inherit the parent's
    ``PYTHONHASHSEED``, so hash-order dependence on either side of the RPC
    boundary shows up as a digest change.
    """
    from repro.service.sharded import ShardedBackend

    with ShardedBackend(shards=shards) as backend:
        run_case(label, query, database, backend=backend)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tuples",
        type=int,
        default=400,
        help="guard cardinality of the A3 workload (default 400)",
    )
    args = parser.parse_args()

    a3 = workload_query("A3")
    a3_db = database_for(a3, guard_tuples=args.tuples, seed=7)
    mixed = parse_sgf(MIXED_QUERY)
    mixed_db = Database.from_dict(MIXED_DB)
    run_case("A3", a3, a3_db)
    run_case("mixed-types", mixed, mixed_db)
    run_sharded_case("A3[sharded]", a3, a3_db)
    run_sharded_case("mixed-types[sharded]", mixed, mixed_db)


if __name__ == "__main__":
    main()
