"""Documentation checks: runnable examples, resolvable links, honest --help.

Run by the CI ``docs`` job (and locally via ``PYTHONPATH=src python
tools/check_docs.py``).  Three families of checks, all blocking:

1. **Examples** — every fenced ``python`` code block in ``docs/*.md`` is
   executed, top to bottom, in one namespace per file (so a later block may
   build on an earlier one).  A raising example means the docs drifted from
   the code.  Blocks in README.md are *not* executed (several are
   intentionally elliptical); docs/ examples must be self-contained.
2. **Links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file (and, when it carries a
   ``#fragment``, at an existing heading in that file).
3. **CLI help** — the ``--help`` output of ``python -m repro`` and the
   subcommands the docs lean on must still mention the flags the docs
   describe (backends, ``--sql-db``, ``bench --sql``/``--kernels``, fuzz
   backend axis).

Exit code 0 when everything passes, 1 otherwise, with one line per failure.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Files whose fenced python blocks are executed.
EXAMPLE_FILES = sorted((REPO / "docs").glob("*.md"))

#: Files whose relative links are checked.
LINK_FILES = [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]

#: (argv, required substrings) pairs checked against parser help text.
HELP_CHECKS = [
    (
        [],
        ["query", "plan", "auto", "serve", "generate", "experiment",
         "bench", "fuzz", "delta", "trace"],
    ),
    (["query"], ["--backend", "{serial,parallel,sql,sharded}", "--sql-db",
                 "--kernel-mode", "--workers", "--shards", "--data-plane",
                 "{auto,shm,pickle}"]),
    (["bench"], ["--kernels", "--sql", "--sql-db", "--guard-tuples"]),
    (["fuzz"], ["--backend", "sql", "sharded", "--profile", "--incremental",
                "--sql-db", "--shards", "--data-plane"]),
    (["delta"], ["--backend", "--sql-db", "--insert-fraction"]),
    (["trace"], ["--backend", "--sql-db", "--trace-out"]),
    (["serve"], ["--sharded", "--shards", "--max-queue", "--request-timeout"]),
]

_FENCE = re.compile(r"^```(\w*)\s*$")
# Inline markdown links; images and reference-style links are not used in
# these docs.  Skips autolinks and raw URLs.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _python_blocks(path: Path):
    """Yield (start_line, source) for every fenced python block."""
    lines = path.read_text().splitlines()
    block, start, language = [], None, None
    for number, line in enumerate(lines, 1):
        fence = _FENCE.match(line)
        if fence and start is None:
            start, language, block = number, fence.group(1).lower(), []
        elif line.strip() == "```" and start is not None:
            if language == "python":
                yield start, "\n".join(block)
            start, language = None, None
        elif start is not None:
            block.append(line)


def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading (same rules the web UI applies)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set:
    return {
        _github_slug(match.group(1))
        for line in path.read_text().splitlines()
        if (match := _HEADING.match(line))
    }


def check_examples() -> list:
    failures = []
    for path in EXAMPLE_FILES:
        namespace: dict = {"__name__": "__docs__"}
        for start, source in _python_blocks(path):
            try:
                exec(compile(source, f"{path.name}:{start}", "exec"), namespace)
            except Exception as exc:  # noqa: BLE001 - report, don't crash
                failures.append(
                    f"{path.relative_to(REPO)}:{start}: example raised "
                    f"{type(exc).__name__}: {exc}"
                )
    return failures


def check_links() -> list:
    failures = []
    for path in LINK_FILES:
        for number, line in enumerate(path.read_text().splitlines(), 1):
            for target in _LINK.findall(line):
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                file_part, _, fragment = target.partition("#")
                resolved = (
                    (path.parent / file_part).resolve() if file_part else path
                )
                if not resolved.exists():
                    failures.append(
                        f"{path.relative_to(REPO)}:{number}: broken link "
                        f"target {target!r}"
                    )
                    continue
                if fragment and resolved.suffix == ".md":
                    if fragment not in _anchors(resolved):
                        failures.append(
                            f"{path.relative_to(REPO)}:{number}: link "
                            f"{target!r} names a missing heading anchor"
                        )
    return failures


def check_cli_help() -> list:
    from repro.cli import build_parser

    failures = []
    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions  # noqa: SLF001 - argparse offers no API
        if hasattr(action, "choices") and action.choices
    )
    for argv, expected in HELP_CHECKS:
        target = subparsers.choices[argv[0]] if argv else parser
        help_text = target.format_help()
        label = "repro " + " ".join(argv) if argv else "repro"
        for needle in expected:
            if needle not in help_text:
                failures.append(f"{label} --help no longer mentions {needle!r}")
    return failures


def main() -> int:
    failures = check_examples() + check_links() + check_cli_help()
    examples = sum(1 for path in EXAMPLE_FILES for _ in _python_blocks(path))
    if failures:
        print(f"check_docs: {len(failures)} failure(s)")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"check_docs: ok ({examples} doc examples executed, "
        f"{len(LINK_FILES)} files link-checked, "
        f"{len(HELP_CHECKS)} --help surfaces verified)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
