"""Setuptools entry point.

The project metadata lives in ``pyproject.toml``; this file exists so that
legacy editable installs (``pip install -e .`` on environments without the
``wheel`` package or network access for build isolation) keep working via
``setup.py develop``.
"""

from setuptools import setup

setup()
