"""Nested SGF queries: dependency graphs, multiway topological sorts and Greedy-SGF.

This example uses the C4-style query set of the paper's SGF experiment
(Section 5.3): four first-level subqueries over two guard relations feeding a
second-level subquery.  It

* prints the dependency graph and its dependency levels,
* shows the multiway topological sort chosen by ``Greedy-SGF`` and compares
  its estimated cost against the SEQUNIT and PARUNIT orderings,
* executes all three SGF strategies and reports their measured metrics,
* verifies the answers against the reference evaluator.

Run with::

    python examples/nested_sgf_pipeline.py
"""

from repro import Gumbo, evaluate_sgf
from repro.core import (
    GumboOptions,
    PlanCostEstimator,
    greedy_multiway_sort,
    parunit_sort,
    register_intermediate_estimates,
    sequnit_sort,
    sgf_group_cost,
    sort_cost,
)
from repro.cost import StatisticsCatalog
from repro.query import DependencyGraph
from repro.workloads.queries import database_for, sgf_query
from repro.workloads.scaling import ScaledEnvironment


def main() -> None:
    environment = ScaledEnvironment(scale=2e-6)
    query = sgf_query("C4")
    database = database_for(
        query,
        guard_tuples=environment.workload.guard_tuples,
        selectivity=0.5,
        seed=11,
    )

    graph = DependencyGraph(query)
    print("Subqueries and their dependencies:")
    for name in graph.nodes:
        parents = ", ".join(sorted(graph.parents[name])) or "(none)"
        print(f"    {name:<4} depends on {parents}")
    print()
    print("Dependency levels (PARUNIT evaluates level by level):")
    for index, level in enumerate(graph.levels()):
        print(f"    level {index}: {', '.join(level)}")
    print()

    catalog = StatisticsCatalog(database, sample_size=500)
    estimator = PlanCostEstimator(catalog, options=GumboOptions())
    register_intermediate_estimates(query, catalog)

    def cost_of(groups) -> float:
        return sort_cost(graph, groups, lambda qs: sgf_group_cost(qs, estimator))

    orderings = {
        "SEQUNIT": sequnit_sort(graph),
        "PARUNIT": parunit_sort(graph),
        "Greedy-SGF": greedy_multiway_sort(graph),
    }
    print("Multiway topological sorts and their estimated costs (Equation (10)):")
    for name, groups in orderings.items():
        rendering = " ; ".join("{" + ", ".join(group) + "}" for group in groups)
        print(f"    {name:<11} cost={cost_of(groups):9.1f}s   {rendering}")
    print()

    gumbo = Gumbo(engine=environment.engine())
    reference = evaluate_sgf(query, database)
    print("Measured execution of the SGF strategies:")
    for strategy in ("sequnit", "parunit", "greedy-sgf"):
        result = gumbo.execute(query, database, strategy)
        summary = result.summary()
        assert set(result.output().tuples()) == set(reference[query.output].tuples())
        print(
            f"    {strategy.upper():<11} rounds={result.metrics.rounds:<3} "
            f"net={summary['net_time_s']:8.1f}s total={summary['total_time_s']:9.1f}s "
            f"input={summary['input_gb']:6.2f}GB comm={summary['communication_gb']:6.2f}GB"
        )
    print()
    print(f"Answer size ({query.output}): {len(reference[query.output])} tuples "
          "(all strategies agree with the reference evaluator)")


if __name__ == "__main__":
    main()
