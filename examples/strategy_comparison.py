"""Strategy comparison on a paper-style workload (a miniature Figure 3 / Figure 4).

Generates the A3 workload (a 4-ary guard probed by four conditionals that all
share the join key) at a configurable scale, evaluates it under every Gumbo
strategy (SEQ, PAR, GREEDY, 1-ROUND) and under the simulated Hive/Pig
baselines (HPAR, HPARS, PPAR), and prints the absolute metrics and the values
relative to SEQ — the same layout as Figure 3 of the paper.

Run with::

    python examples/strategy_comparison.py [scale]

where the optional ``scale`` (default ``2e-6``) multiplies the paper's
100M-tuple relations; ``2e-6`` means 200-tuple relations, which runs in a few
seconds while preserving the paper-scale simulated times.
"""

import sys

from repro.experiments import ExperimentRunner, records_table, relative_table
from repro.workloads.queries import bsgf_query_set, database_for
from repro.workloads.scaling import ScaledEnvironment

GUMBO_STRATEGIES = ("seq", "par", "greedy", "1-round")
BASELINE_STRATEGIES = ("hpar", "hpars", "ppar")


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 2e-6
    environment = ScaledEnvironment(scale=scale)
    runner = ExperimentRunner(environment)

    queries = bsgf_query_set("A3")
    database = database_for(
        queries,
        guard_tuples=environment.workload.guard_tuples,
        conditional_tuples=environment.workload.conditional_tuples,
        selectivity=0.5,
        seed=7,
    )

    print(f"Workload: query A3, {environment.workload.guard_tuples} guard tuples "
          f"(scale {scale:g} of the paper's 100M), 10 simulated nodes")
    print()

    records = []
    for strategy in GUMBO_STRATEGIES + BASELINE_STRATEGIES:
        records.append(runner.run_strategy("A3", queries, strategy, database))

    print(records_table(records, title="Absolute metrics (simulated paper-scale)"))
    print(relative_table(records, "seq", title="Relative to SEQ (cf. Figure 3b)"))

    greedy = next(r for r in records if r.strategy == "GREEDY")
    par = next(r for r in records if r.strategy == "PAR")
    one_round = next(r for r in records if r.strategy == "1-ROUND")
    print("Observations expected from the paper:")
    print(f"  * GREEDY total time {greedy.total_time:.0f}s "
          f"<= PAR total time {par.total_time:.0f}s (grouping pays off on A3)")
    print(f"  * 1-ROUND has the lowest net time: {one_round.net_time:.0f}s")


if __name__ == "__main__":
    main()
