"""Plan exploration: the alternative basic MR programs of Figure 2 / Example 4.

The query

    Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));

needs three semi-joins X1, X2, X3.  Any partition of {X1, X2, X3} yields a
valid two-round plan (one MSJ job per block plus an EVAL job).  This example

* enumerates every partition, estimates its cost with the paper's cost model
  (Equation (9)) under both the Gumbo (per-partition) and Wang (aggregate)
  map-cost variants,
* shows which partition ``Greedy-BSGF`` picks and compares it against the
  brute-force optimum (``BSGF-Opt``),
* executes the PAR, GREEDY and SEQ plans and prints their measured metrics.

Run with::

    python examples/plan_exploration.py
"""

from repro import Database, Gumbo
from repro.core import (
    BasicPlan,
    GumboOptions,
    PlanCostEstimator,
    greedy_partition,
    optimal_partition,
    set_partitions,
)
from repro.cost import GumboCostModel, StatisticsCatalog, WangCostModel
from repro.query import parse_bsgf
from repro.workloads.generator import generate_conditional, generate_guard

QUERY_TEXT = (
    "Z := SELECT (x, y) FROM R(x, y) WHERE S(x, z) AND (T(y) OR NOT U(x));"
)


def build_database() -> Database:
    """A synthetic instance with a 2 000-tuple guard and three conditionals."""
    database = Database()
    database.add_relation(generate_guard("R", 2000, arity=2, seed=42))
    database.add_relation(
        generate_conditional("S", 2000, guard_tuples=2000, selectivity=0.5, arity=2, seed=1)
    )
    database.add_relation(
        generate_conditional("T", 2000, guard_tuples=2000, selectivity=0.3, seed=2)
    )
    database.add_relation(
        generate_conditional("U", 2000, guard_tuples=2000, selectivity=0.7, seed=3)
    )
    return database


def describe_partition(partition) -> str:
    return " | ".join(
        "MSJ(" + ", ".join(spec.output for spec in group) + ")" for group in partition
    )


def main() -> None:
    database = build_database()
    query = parse_bsgf(QUERY_TEXT)
    specs = query.semijoin_specs()
    print("Semi-joins of the query:")
    for spec in specs:
        print("   ", spec)
    print()

    catalog = StatisticsCatalog(database, sample_size=500)
    estimators = {
        "gumbo": PlanCostEstimator(catalog, GumboCostModel(), GumboOptions()),
        "wang": PlanCostEstimator(catalog, WangCostModel(), GumboOptions()),
    }

    print("Estimated cost of every partition (Equation (9)), in simulated seconds:")
    header = f"    {'partition':<40}" + "".join(f"{name:>12}" for name in estimators)
    print(header)
    for partition in set_partitions(specs):
        row = f"    {describe_partition(partition):<40}"
        for estimator in estimators.values():
            cost = estimator.basic_program_cost([query], partition)
            row += f"{cost:12.1f}"
        print(row)
    print()

    estimator = estimators["gumbo"]
    greedy_groups = greedy_partition(specs, estimator)
    optimal_groups, optimal_cost = optimal_partition(specs, estimator)
    print("Greedy-BSGF chooses :", describe_partition(greedy_groups))
    print("BSGF-Opt (brute force):", describe_partition(optimal_groups))
    print(f"Optimal MSJ cost      : {optimal_cost:.1f}s")
    print()

    print("Measured execution of the three standard strategies:")
    gumbo = Gumbo()
    for strategy in ("seq", "par", "greedy"):
        result = gumbo.execute(query, database, strategy)
        summary = result.summary()
        print(
            f"    {strategy.upper():<8} "
            f"net={summary['net_time_s']:<8.1f} total={summary['total_time_s']:<9.1f} "
            f"input={summary['input_gb'] * 1024:<8.2f}MB "
            f"comm={summary['communication_gb'] * 1024:<8.2f}MB "
            f"answer={len(result.output())} tuples"
        )

    plan = BasicPlan([query], greedy_groups, GumboOptions(), name="greedy plan")
    print()
    print("Greedy two-round plan:", plan.describe())


if __name__ == "__main__":
    main()
