"""Quickstart: evaluate a guarded-fragment query with Gumbo.

This example builds a small in-memory database, writes an SGF query in the
paper's SQL-like syntax, evaluates it with the default (GREEDY) strategy on
the simulated MapReduce cluster, and prints the answer together with the four
performance metrics the paper reports (net time, total time, HDFS input and
mapper-to-reducer communication).

Run with::

    python examples/quickstart.py
"""

from repro import Database, Gumbo, evaluate_sgf, parse_sgf

QUERY = """
-- Books whose author got a "bad" rating at all three retailers are flagged;
-- the answer lists upcoming books of authors who were never flagged.
Flagged := SELECT aut FROM Amaz(ttl, aut, "bad")
           WHERE BN(ttl, aut, "bad") AND BD(ttl, aut, "bad");
Answer  := SELECT (new, aut) FROM Upcoming(new, aut) WHERE NOT Flagged(aut);
"""


def build_database() -> Database:
    """A toy instance of the bookstore schema from Example 2 of the paper."""
    return Database.from_dict(
        {
            "Amaz": [
                ("Dune", "Herbert", "good"),
                ("Sandworms", "Anderson", "bad"),
                ("Gnomon", "Harkaway", "bad"),
            ],
            "BN": [
                ("Sandworms", "Anderson", "bad"),
                ("Gnomon", "Harkaway", "good"),
            ],
            "BD": [
                ("Sandworms", "Anderson", "bad"),
            ],
            "Upcoming": [
                ("Dune II", "Herbert"),
                ("More Sandworms", "Anderson"),
                ("Titanium Noir", "Harkaway"),
            ],
        }
    )


def main() -> None:
    database = build_database()
    query = parse_sgf(QUERY)

    gumbo = Gumbo()
    result = gumbo.execute(query, database, strategy="greedy")

    print("Query plan strategy:", result.strategy)
    print("MapReduce jobs:", result.metrics.num_jobs, "in", result.metrics.rounds, "rounds")
    print()
    print("Answer (upcoming books of never-flagged authors):")
    for row in sorted(result.output().tuples()):
        print("   ", row)

    print()
    print("Simulated execution metrics:")
    for key, value in result.summary().items():
        print(f"    {key:>20}: {value:10.3f}")

    # The reference evaluator implements the semantics of Section 3.1 directly;
    # it always agrees with the MapReduce evaluation.
    reference = evaluate_sgf(query, database)["Answer"]
    assert set(reference.tuples()) == set(result.output().tuples())
    print()
    print("Reference evaluator agrees with the MapReduce plan.")


if __name__ == "__main__":
    main()
