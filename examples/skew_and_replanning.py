"""Extensions: skew handling for MSJ and dynamic re-planning of SGF queries.

Two features the paper sketches without evaluating are demonstrated here:

1. **Skew handling** (Section 6): a guard relation in which one join-key value
   dominates overloads a single reducer of the MSJ job.  Given heavy-hitter
   information (detected from the statistics samples), the skew-aware MSJ job
   salts the heavy key across several reducers, shrinking the longest reduce
   task — and therefore the simulated net time — while producing exactly the
   same answer.

2. **Dynamic re-planning** (Section 4.6): instead of planning an entire nested
   SGF query up front with upper-bound size estimates, the dynamic executor
   re-runs Greedy-SGF after every evaluated group, so later grouping decisions
   see the *actual* sizes of the materialised intermediate relations.

Run with::

    python examples/skew_and_replanning.py
"""

from repro import Database, DynamicSGFExecutor, Gumbo, MapReduceEngine
from repro.core import MSJJob, SkewAwareMSJJob, detect_heavy_hitters
from repro.cost import StatisticsCatalog
from repro.mapreduce.scheduler import makespan
from repro.query import parse_bsgf
from repro.workloads.queries import database_for, sgf_query


def skew_demo() -> None:
    print("=" * 72)
    print("1. Skew handling in the MSJ operator")
    print("=" * 72)

    # 90% of the guard tuples join on the single value 7.
    heavy_rows = [(7, i) for i in range(1800)]
    light_rows = [(100 + (i % 50), i) for i in range(200)]
    database = Database.from_dict(
        {"R": heavy_rows + light_rows, "S": [(7,)] + [(100 + i, ) for i in range(0, 50, 2)]}
    )
    query = parse_bsgf("Z := SELECT (x, y) FROM R(x, y) WHERE S(x);")
    specs = query.semijoin_specs()

    catalog = StatisticsCatalog(database, sample_size=500)
    report = detect_heavy_hitters(catalog, specs)
    print(f"Detected heavy join keys: {sorted(report.heavy_keys)}")

    engine = MapReduceEngine()
    reducers = 8
    plain = MSJJob("plain", specs)
    salted = SkewAwareMSJJob("salted", specs, report.heavy_keys, salt_factor=8)
    plain.fixed_reducers = salted.fixed_reducers = reducers

    plain_metrics = engine.run_job(plain, database).metrics
    salted_metrics = engine.run_job(salted, database).metrics
    slots = engine.cluster.total_slots
    print(f"{'':24}{'plain MSJ':>14}{'skew-aware MSJ':>16}")
    print(f"{'longest reduce task':<24}{max(plain_metrics.reduce_task_durations):>13.1f}s"
          f"{max(salted_metrics.reduce_task_durations):>15.1f}s")
    print(f"{'reduce makespan':<24}{makespan(plain_metrics.reduce_task_durations, slots):>13.1f}s"
          f"{makespan(salted_metrics.reduce_task_durations, slots):>15.1f}s")
    print(f"{'communication (MB)':<24}{plain_metrics.intermediate_mb:>13.4f} "
          f"{salted_metrics.intermediate_mb:>15.4f}")

    plain_out = engine.run_job(MSJJob("check", specs), database).outputs[specs[0].output]
    salted_out = engine.run_job(
        SkewAwareMSJJob("check2", specs, report.heavy_keys), database
    ).outputs[specs[0].output]
    assert plain_out.tuples() == salted_out.tuples()
    print("Answers are identical with and without salting.")
    print()


def replanning_demo() -> None:
    print("=" * 72)
    print("2. Dynamic re-planning of a nested SGF query (C3)")
    print("=" * 72)

    query = sgf_query("C3")
    database = database_for(query, guard_tuples=400, selectivity=0.3, seed=17)

    static = Gumbo().execute(query, database, "greedy-sgf")
    dynamic = DynamicSGFExecutor().execute(query, database)

    print("Static GREEDY-SGF plan:")
    print(f"    jobs={static.metrics.num_jobs}, rounds={static.metrics.rounds}, "
          f"net={static.metrics.net_time:.1f}s, total={static.metrics.total_time:.1f}s")
    print("Dynamic re-planning execution:")
    for stage in dynamic.stages:
        print(f"    stage {stage.index}: evaluated {', '.join(stage.subqueries)} "
              f"({stage.msj_groups} MSJ group(s), "
              f"net {stage.metrics.net_time:.1f}s, total {stage.metrics.total_time:.1f}s)")
    print(f"    overall: net={dynamic.metrics.net_time:.1f}s, "
          f"total={dynamic.metrics.total_time:.1f}s")

    for name in query.output_names:
        assert dynamic.outputs[name].tuples() == {
            row for row in static.all_outputs[name].tuples()
        }
    print("Dynamic and static evaluations agree on every output relation.")


def main() -> None:
    skew_demo()
    replanning_demo()


if __name__ == "__main__":
    main()
