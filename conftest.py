"""Pytest bootstrap: make ``src/`` importable even without an installed package.

The library is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in minimal environments (no
network, no wheel package) where the editable install is unavailable.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
